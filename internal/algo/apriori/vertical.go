package apriori

import (
	"context"

	"umine/internal/core"
	"umine/internal/kernel"
	"umine/internal/parallel"
)

// The vertical counting plan: instead of scanning every transaction against
// the candidate trie, each candidate's expected support is computed by
// intersecting its items' TID postings lists from the database's lazily
// built vertical index (core.VerticalIndex, U-Eclat style). The cost is
// proportional to the candidate's smallest posting list, not to the
// database, so sparse candidate sets — late levels, restricted phase-2
// verification passes, long-tailed universes — count in a fraction of a
// horizontal scan.
//
// Bit-identity with the horizontal plan is structural, not approximate:
//
//   - a transaction's containment probability multiplies the unit
//     probabilities in canonical item order, exactly the trie walk's
//     root-to-leaf order;
//   - contributions accumulate in ascending TID order, the scan order;
//   - partial sums fold with the chunk grouping of chunkSizeFor (the
//     adaptive parallel.ChunkSizeForSpan layout, a function of the database
//     shape alone) — the grouping the chunk-sharded horizontal merge uses —
//     and a chunk whose partial is zero is a no-op in both plans (x + 0 ≡ x
//     for the non-negative sums involved).
//
// Hence count may switch plans per level (and the partition engine's
// restricted runs may see a different choice than a single-shot mine)
// without moving a single result bit.

// verticalProbeCost weights one posting-list probe against one sequential
// unit visit of the horizontal scan: probes advance cursors over k lists
// with worse locality than the arena's contiguous columns. Chosen
// conservatively so the crossover errs toward the (always safe) horizontal
// plan.
const verticalProbeCost = 4

// useVertical is the crossover heuristic: intersect postings when the
// estimated probe work (smallest posting list × k probes × cost factor,
// summed over candidates) undercuts one horizontal scan of the arena span.
// The decision depends only on the database view and the candidate set —
// never on Workers — so plan choice is deterministic and cannot differ
// between worker counts. Level 1 always scans horizontally: a single scan
// aggregates every item at once, which no per-item probing can beat.
func useVertical(db *core.Database, cands []Candidate, k int) bool {
	if k < 2 || len(cands) == 0 {
		return false
	}
	counts := db.ItemTIDCounts()
	hcost := float64(db.NumUnits())
	vcost := 0.0
	for ci := range cands {
		minLen := uint32(0)
		for i, it := range cands[ci].Items {
			if c := counts[it]; i == 0 || c < minLen {
				minLen = c
			}
		}
		vcost += float64(minLen) * float64(k) * verticalProbeCost
		if vcost >= hcost {
			return false
		}
	}
	return true
}

// countVertical counts every candidate by postings intersection. Candidates
// are independent — each one's floating-point work is self-contained — so
// they fan out over the worker pool and merge in candidate order; results
// are bit-identical for every worker count and to the horizontal plan.
// Cancellation lands between candidates (parallel.DoCtx's per-task check).
//
// The intersections themselves live in internal/kernel: the optimized
// kernels by default, the scalar references (this plan's original loops)
// under ExecTuning.DisableKernel. Both are asserted bit-identical, so the
// toggle moves instructions, never bits; exec counts which side served the
// level's candidates.
func countVertical(ctx context.Context, db *core.Database, cands []Candidate, collectProbs bool, workers int, stats *core.MiningStats, tuning core.ExecTuning, exec *core.ExecStats) error {
	if len(cands) == 0 {
		return ctx.Err()
	}
	v := db.Vertical()
	// One logical counting pass over the data, same as a horizontal scan —
	// keeping DBScans comparable across plans and levels.
	stats.DBScans++
	size := chunkSizeFor(db)
	useKernel := !tuning.DisableKernel
	outs, err := parallel.MapCtx(ctx, workers, cands, func(ci int, _ Candidate) kernel.Agg {
		return intersect(v, cands[ci].Items, size, collectProbs, useKernel)
	})
	if err != nil {
		return err
	}
	for ci := range cands {
		cands[ci].ESup += outs[ci].ESup
		cands[ci].Var += outs[ci].Var
		if collectProbs && len(outs[ci].Probs) > 0 {
			cands[ci].Probs = append(cands[ci].Probs, outs[ci].Probs...)
		}
		stats.PostingsProbed += outs[ci].Probes
	}
	if useKernel {
		exec.KernelIntersects += int64(len(cands))
	} else {
		exec.ScalarIntersects += int64(len(cands))
	}
	// The index is this plan's dominant live structure — tracked like the
	// horizontal plan's trie so the paper-style memory reports compare like
	// quantities across plans and families.
	stats.TrackPeak(v.Bytes() + candidateBytes(cands, collectProbs))
	return nil
}

// intersect runs one candidate's postings intersection through the selected
// kernel implementation. The k = 2 fast path and the generic k-way driver
// are dispatched here (not inside the kernels) so the generic path stays
// independently testable; probe accounting follows the dispatched path, the
// aggregates are bit-identical either way.
func intersect(v *core.VerticalIndex, items core.Itemset, chunkSize int, collectProbs, useKernel bool) kernel.Agg {
	if len(items) == 2 {
		var a, b kernel.List
		a.TIDs, a.Probs = v.Postings(items[0])
		b.TIDs, b.Probs = v.Postings(items[1])
		if useKernel {
			return kernel.Pair(a, b, chunkSize, collectProbs)
		}
		return kernel.PairScalar(a, b, chunkSize, collectProbs)
	}
	lists := make([]kernel.List, len(items))
	for i, it := range items {
		lists[i].TIDs, lists[i].Probs = v.Postings(it)
	}
	if useKernel {
		return kernel.KWay(lists, chunkSize, collectProbs)
	}
	return kernel.KWayScalar(lists, chunkSize, collectProbs)
}

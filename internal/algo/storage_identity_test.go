package algo

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"umine/internal/core"
)

// The arena acceptance gate: every registered configuration must produce
// byte-identical serialized results on an arena-built database
// (core.NewDatabase streaming raw units through the Builder) and on a
// legacy-style one (each transaction normalized separately, then assembled
// with FromTransactions), at Workers ∈ {1, 4} × Partitions ∈ {1, 4}. The
// storage refactor is a layout change, not a semantics change — the
// construction route, like the worker count and the partition count, may
// never move a bit.

// storageIdentityRaw generates the raw unit lists both constructions share:
// dense enough that every family mines multiple levels, small enough that
// the exact miners stay fast, and larger than one counting chunk is not
// needed here (the determinism suite covers chunked counting; this suite
// covers construction-route identity across the execution grid).
func storageIdentityRaw() [][]core.Unit {
	rng := rand.New(rand.NewSource(2024))
	raw := make([][]core.Unit, 120)
	for i := range raw {
		for it := 0; it < 9; it++ {
			if rng.Float64() < 0.5 {
				// Quantized probabilities make UFP-tree sharing reachable.
				p := float64(1+rng.Intn(16)) / 16
				raw[i] = append(raw[i], core.Unit{Item: core.Item(it), Prob: p})
			}
		}
	}
	return raw
}

func storageIdentityDBs(t *testing.T) (arena, legacy *core.Database) {
	t.Helper()
	raw := storageIdentityRaw()
	arena, err := core.NewDatabase("storage-identity", raw)
	if err != nil {
		t.Fatal(err)
	}
	txs := make([]core.Transaction, 0, len(raw))
	for i, units := range raw {
		tx, err := core.NormalizeTransaction(units)
		if err != nil {
			t.Fatalf("transaction %d: %v", i, err)
		}
		txs = append(txs, tx)
	}
	legacy = core.FromTransactions("storage-identity", txs)
	return arena, legacy
}

func TestArenaDatabaseBitIdenticalAcrossConfigurations(t *testing.T) {
	arena, legacy := storageIdentityDBs(t)
	names := Names()
	if got := len(names); got != 11 {
		t.Fatalf("registry holds %d configurations, want 11 (ten paper configurations + MCSampling)", got)
	}
	workerCounts := []int{1, 4}
	partitionCounts := []int{1, 4}
	for _, name := range names {
		sem := MustNew(name).Semantics()
		var th core.Thresholds
		switch sem {
		case core.ExpectedSupport:
			th = core.Thresholds{MinESup: 0.2}
		case core.Probabilistic:
			th = core.Thresholds{MinSup: 0.25, PFT: 0.8}
		}
		for _, w := range workerCounts {
			for _, k := range partitionCounts {
				opts := core.Options{Workers: w, Partitions: k}
				onArena := mineSerialized(t, name, arena, th, opts)
				onLegacy := mineSerialized(t, name, legacy, th, opts)
				if !bytes.Equal(onArena, onLegacy) {
					t.Errorf("%s (workers=%d, partitions=%d): arena-built and legacy-built databases disagree",
						name, w, k)
				}
			}
		}
	}
}

// mineSerialized mines and returns the canonical JSON serialization — the
// byte-identity the server's cache and the experiment reports rely on.
func mineSerialized(t *testing.T, name string, db *core.Database, th core.Thresholds, opts core.Options) []byte {
	t.Helper()
	m, err := NewWith(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m.Mine(context.Background(), db, th)
	if err != nil {
		t.Fatalf("%s on %s (%+v): %v", name, db.Name, opts, err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

package algo

// The cancellation contract, asserted per registered miner configuration:
//
//   - a pre-canceled context returns ctx.Err() immediately (no mining);
//   - a mid-run cancellation (triggered from the miner's own first
//     Progress checkpoint, so it provably lands while the run is alive)
//     returns ctx.Err() promptly;
//   - no goroutines leak: the shared pool stops dispatching and fully
//     drains before Mine returns, at every worker count.
//
// The CI pipeline runs this file twice under -race (`make test-cancel`) to
// shake out order-dependent flakes in the cancellation paths.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"umine/internal/core"
	"umine/internal/core/coretest"
)

// cancelDB is sized so every miner family passes through several
// cooperative checkpoints (multiple levels, many prefix subtrees) before
// finishing: cancellation triggered at the first checkpoint is guaranteed
// to be mid-run.
func cancelDB() *core.Database {
	return coretest.RandomDB(rand.New(rand.NewSource(77)), 400, 12, 0.6)
}

// cancelThresholds returns low thresholds (many frequent itemsets, deep
// levels) matching the miner's semantics.
func cancelThresholds(m core.Miner) core.Thresholds {
	if m.Semantics() == core.ExpectedSupport {
		return core.Thresholds{MinESup: 0.05}
	}
	return core.Thresholds{MinSup: 0.1, PFT: 0.5}
}

func TestCancelPreCanceledContext(t *testing.T) {
	db := cancelDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range Entries() {
		for _, workers := range []int{1, 4} {
			m := e.New()
			core.ApplyOptions(m, core.Options{Workers: workers})
			start := time.Now()
			rs, err := m.Mine(ctx, db, cancelThresholds(m))
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: pre-canceled ctx: got (%v, %v), want context.Canceled", e.Name, workers, rs, err)
			}
			if rs != nil {
				t.Errorf("%s workers=%d: pre-canceled ctx returned results", e.Name, workers)
			}
			if d := time.Since(start); d > 2*time.Second {
				t.Errorf("%s workers=%d: pre-canceled ctx took %v", e.Name, workers, d)
			}
		}
	}
}

func TestCancelMidRun(t *testing.T) {
	db := cancelDB()
	for _, e := range Entries() {
		for _, workers := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			m := e.New()
			// Cancel from the miner's own first checkpoint: the run is
			// provably alive, and the return must then be prompt (bounded
			// by one chunk/candidate/subtree of work).
			core.ApplyOptions(m, core.Options{
				Workers:  workers,
				Progress: func(core.ProgressEvent) { cancel() },
			})
			rs, err := m.Mine(ctx, db, cancelThresholds(m))
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: mid-run cancel: got (results=%v, err=%v), want context.Canceled",
					e.Name, workers, rs != nil, err)
			}
		}
	}
}

func TestCancelDeadlineExceeded(t *testing.T) {
	// A deadline (the serving layer's per-request timeout shape) aborts the
	// same way a cancel does, and miners must surface ctx.Err() verbatim —
	// DeadlineExceeded here, not a hardcoded Canceled. The deadline is in
	// the past so the test is immune to timer-firing races against fast
	// miners.
	db := cancelDB()
	for _, e := range Entries() {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		m := e.New()
		core.ApplyOptions(m, core.Options{Workers: 2})
		_, err := m.Mine(ctx, db, cancelThresholds(m))
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: expired deadline: err=%v, want context.DeadlineExceeded", e.Name, err)
		}
	}
}

func TestCancelNoGoroutineLeak(t *testing.T) {
	db := cancelDB()
	before := runtime.NumGoroutine()
	for _, e := range Entries() {
		ctx, cancel := context.WithCancel(context.Background())
		m := e.New()
		core.ApplyOptions(m, core.Options{
			Workers:  4,
			Progress: func(core.ProgressEvent) { cancel() },
		})
		if _, err := m.Mine(ctx, db, cancelThresholds(m)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: mid-run cancel: err=%v", e.Name, err)
		}
		cancel()
	}
	// The pool drains synchronously before Mine returns; the retry loop
	// only absorbs runtime bookkeeping goroutines winding down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after canceled mines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelCompletedRunUnaffected pins the guarantee that installing the
// cancellation/progress plumbing changed nothing for completed runs: a mine
// under a cancelable-but-never-canceled context with an observer attached
// is bit-identical to a plain background run.
func TestCancelCompletedRunUnaffected(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full per-miner comparison is the long-suite/CI cancel job's work")
	}
	db := cancelDB()
	for _, e := range Entries() {
		base := e.New()
		want, err := base.Mine(context.Background(), db, cancelThresholds(base))
		if err != nil {
			t.Fatalf("%s: baseline: %v", e.Name, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		m := e.New()
		events := 0
		core.ApplyOptions(m, core.Options{Workers: 1, Progress: func(core.ProgressEvent) { events++ }})
		got, err := m.Mine(ctx, db, cancelThresholds(m))
		cancel()
		if err != nil {
			t.Fatalf("%s: observed run: %v", e.Name, err)
		}
		if events == 0 {
			t.Errorf("%s: no ProgressEvents streamed", e.Name)
		}
		requireIdenticalResults(t, e.Name, "cancelDB(observed-vs-plain)", 0, 1, want, got)
	}
}

// TestCancelProgressDoneOnEmptyRun pins the observer contract on the
// degenerate path: a completed run that finds nothing frequent still ends
// with a PhaseDone event (every early return included).
func TestCancelProgressDoneOnEmptyRun(t *testing.T) {
	db := cancelDB()
	for _, e := range Entries() {
		m := e.New()
		var phases []core.ProgressPhase
		core.ApplyOptions(m, core.Options{Progress: func(ev core.ProgressEvent) {
			phases = append(phases, ev.Phase)
		}})
		th := core.Thresholds{MinESup: 0.999}
		if m.Semantics() == core.Probabilistic {
			th = core.Thresholds{MinSup: 0.999, PFT: 0.999}
		}
		rs, err := m.Mine(context.Background(), db, th)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if rs.Len() != 0 {
			t.Fatalf("%s: thresholds not empty-inducing (%d results); adjust the test", e.Name, rs.Len())
		}
		if len(phases) == 0 || phases[len(phases)-1] != core.PhaseDone {
			t.Errorf("%s: empty completed run emitted %v, want a trailing PhaseDone", e.Name, phases)
		}
	}
}

// TestCancelProgressStreamsMidRun asserts events arrive before completion
// (not just a trailing done event): every miner must emit at least one
// non-done event on this workload.
func TestCancelProgressStreamsMidRun(t *testing.T) {
	db := cancelDB()
	for _, e := range Entries() {
		m := e.New()
		var phases []core.ProgressPhase
		core.ApplyOptions(m, core.Options{Progress: func(ev core.ProgressEvent) {
			phases = append(phases, ev.Phase)
		}})
		if _, err := m.Mine(context.Background(), db, cancelThresholds(m)); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(phases) < 2 {
			t.Fatalf("%s: %d ProgressEvents, want mid-run events plus the done event", e.Name, len(phases))
		}
		if last := phases[len(phases)-1]; last != core.PhaseDone {
			t.Errorf("%s: last event phase %q, want %q", e.Name, last, core.PhaseDone)
		}
		for _, ph := range phases[:len(phases)-1] {
			if ph == core.PhaseDone {
				t.Errorf("%s: PhaseDone emitted before the end", e.Name)
			}
		}
	}
}

// Package uapriori implements UApriori [Chui, Kao, Hung 2007; Chui, Kao
// 2008], the breadth-first generate-and-test miner for expected
// support-based frequent itemsets (paper §3.1.1).
//
// UApriori extends the classical Apriori algorithm to uncertain data: the
// support count of a candidate becomes the sum over transactions of the
// containment probability product. The downward-closure property holds for
// expected support, so classical Apriori pruning applies unchanged; the
// decremental pruning of the original papers is realized as the
// subset-minimum expected-support bound in the shared framework.
package uapriori

import (
	"context"
	"fmt"

	"umine/internal/algo/apriori"
	"umine/internal/core"
)

// Miner is the UApriori algorithm. The zero value is ready to use.
type Miner struct {
	// DisableDecrementalPrune turns off the subset-esup bound, leaving only
	// classical Apriori pruning (for ablation benchmarks).
	DisableDecrementalPrune bool
	// Workers shards the counting pass over this many goroutines (0 or 1 =
	// serial, the paper's single-threaded platform; negative = GOMAXPROCS).
	// Results are identical for every worker count: the shared layer's
	// chunk layout depends only on the database size and merges in chunk
	// order.
	Workers int
	// Progress observes the run per level (may be nil).
	Progress core.ProgressFunc
	// Restrict confines the run to a candidate superset (phase 2 of the
	// SON partition engine); see apriori.Config.Restrict. May be nil.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *Miner) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *Miner) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetRestrict implements core.RestrictableMiner.
func (m *Miner) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// SetProgress implements core.ObservableMiner.
func (m *Miner) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner.
func (m *Miner) Name() string { return "UApriori" }

// Semantics implements core.Miner.
func (m *Miner) Semantics() core.Semantics { return core.ExpectedSupport }

// Mine implements core.Miner.
func (m *Miner) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.ExpectedSupport); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	minCount := th.MinESupCount(db.N())
	cfg := apriori.Config{
		// The expected-support test is pure, so it may run on the pool too.
		ParallelDecide: true,
		Decide: func(c *apriori.Candidate) (core.Result, bool) {
			if c.ESup >= minCount-core.Eps {
				return core.Result{Itemset: c.Items, ESup: c.ESup, Var: c.Var}, true
			}
			return core.Result{}, false
		},
	}
	if !m.DisableDecrementalPrune {
		cfg.ESupPrune = minCount
	}
	cfg.Workers = m.Workers
	cfg.Name = m.Name()
	cfg.Progress = m.Progress
	cfg.Restrict = m.Restrict
	cfg.Exec = m.Exec
	results, stats, err := apriori.Run(ctx, db, cfg)
	if err != nil {
		return nil, err
	}
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.ExpectedSupport,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      stats,
	}, nil
}

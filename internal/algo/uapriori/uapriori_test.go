package uapriori

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
)

func TestPaperExample1(t *testing.T) {
	db := coretest.PaperDB()
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("got %d itemsets, want 2: %+v", rs.Len(), rs.Results)
	}
	a, _ := rs.Lookup(core.NewItemset(coretest.A))
	c, _ := rs.Lookup(core.NewItemset(coretest.C))
	if math.Abs(a.ESup-2.1) > 1e-12 || math.Abs(c.ESup-2.6) > 1e-12 {
		t.Fatalf("esup(A)=%v esup(C)=%v", a.ESup, c.ESup)
	}
}

func TestPaperDBLowerThreshold(t *testing.T) {
	// At min_esup = 0.25 (threshold 1.0) the frequent set grows to include
	// 2-itemsets; validate against brute force.
	db := coretest.PaperDB()
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := coretest.BruteForceExpected(db, 0.25)
	compareResults(t, rs.Results, want)
}

func compareResults(t *testing.T, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d itemsets, want %d\ngot: %v\nwant: %v", len(got), len(want), names(got), names(want))
	}
	for i := range want {
		if !got[i].Itemset.Equal(want[i].Itemset) {
			t.Fatalf("itemset %d: %v vs %v", i, got[i].Itemset, want[i].Itemset)
		}
		if math.Abs(got[i].ESup-want[i].ESup) > 1e-9 {
			t.Fatalf("%v esup %v vs %v", got[i].Itemset, got[i].ESup, want[i].ESup)
		}
		if math.Abs(got[i].Var-want[i].Var) > 1e-9 {
			t.Fatalf("%v var %v vs %v", got[i].Itemset, got[i].Var, want[i].Var)
		}
	}
}

func names(rs []core.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Itemset.String()
	}
	return out
}

func TestAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		db := coretest.RandomDB(rng, 10+rng.Intn(30), 6, 0.4+0.4*rng.Float64())
		minESup := 0.05 + 0.5*rng.Float64()
		rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: minESup})
		if err != nil {
			t.Fatal(err)
		}
		want := coretest.BruteForceExpected(db, minESup)
		compareResults(t, rs.Results, want)
	}
}

func TestDecrementalPruneDoesNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		db := coretest.RandomDB(rng, 40, 8, 0.5)
		with, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		without, err := (&Miner{DisableDecrementalPrune: true}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, with.Results, without.Results)
		if with.Stats.CandidatesPruned < without.Stats.CandidatesPruned {
			t.Fatalf("decremental pruning pruned fewer candidates (%d) than plain Apriori (%d)",
				with.Stats.CandidatesPruned, without.Stats.CandidatesPruned)
		}
	}
}

func TestRejectsBadThresholds(t *testing.T) {
	db := coretest.PaperDB()
	for _, th := range []core.Thresholds{{MinESup: 0}, {MinESup: -0.5}, {MinESup: 2}} {
		if _, err := (&Miner{}).Mine(context.Background(), db, th); err == nil {
			t.Errorf("thresholds %+v accepted", th)
		}
	}
}

func TestEmptyAndDegenerateDatabases(t *testing.T) {
	empty := core.MustNewDatabase("empty", nil)
	rs, err := (&Miner{}).Mine(context.Background(), empty, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("empty database produced %d itemsets", rs.Len())
	}

	// All-empty transactions.
	blank := core.MustNewDatabase("blank", [][]core.Unit{{}, {}, {}})
	rs, err = (&Miner{}).Mine(context.Background(), blank, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("blank database produced %d itemsets", rs.Len())
	}

	// Single certain transaction: the itemset lattice of that transaction.
	one := core.MustNewDatabase("one", [][]core.Unit{{{Item: 0, Prob: 1}, {Item: 1, Prob: 1}}})
	rs, err = (&Miner{}).Mine(context.Background(), one, core.Thresholds{MinESup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 { // {0}, {1}, {0 1}
		t.Fatalf("got %d itemsets, want 3: %v", rs.Len(), names(rs.Results))
	}
}

func TestCertainDataMatchesClassicalApriori(t *testing.T) {
	// With all probabilities 1 the expected support is the classical
	// support; compare with a hand-computed example.
	db := core.MustNewDatabase("certain", [][]core.Unit{
		{{Item: 0, Prob: 1}, {Item: 1, Prob: 1}, {Item: 2, Prob: 1}},
		{{Item: 0, Prob: 1}, {Item: 1, Prob: 1}},
		{{Item: 0, Prob: 1}, {Item: 2, Prob: 1}},
		{{Item: 1, Prob: 1}, {Item: 2, Prob: 1}},
	})
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Supports: {0}:3 {1}:3 {2}:3 {01}:2 {02}:2 {12}:2 {012}:1 → threshold 2.
	if rs.Len() != 6 {
		t.Fatalf("got %d itemsets, want 6: %v", rs.Len(), names(rs.Results))
	}
	if _, ok := rs.Lookup(core.NewItemset(0, 1, 2)); ok {
		t.Fatal("{0 1 2} has support 1 and must not be frequent")
	}
}

func TestStatsAreTracked(t *testing.T) {
	db := coretest.PaperDB()
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.CandidatesGenerated == 0 || rs.Stats.DBScans == 0 {
		t.Fatalf("stats not tracked: %+v", rs.Stats)
	}
	if rs.Stats.PeakTrackedBytes == 0 {
		t.Fatal("peak bytes not tracked")
	}
}

// The registry side of the SON partitioned mining engine: per-algorithm
// phase-1 plans (which expected-support miner generates partition
// candidates, and under which candidate floor) and the constructor that
// wires a partition.Engine to the registry. The engine itself
// (umine/internal/partition) stays free of algorithm knowledge.

package algo

import (
	"context"
	"fmt"

	"umine/internal/core"
	"umine/internal/partition"
)

// partitionPlan returns the phase-1 miner and candidate bound for a
// registry entry. Expected-support algorithms mine partitions with
// themselves at their own (relaxed) threshold; probabilistic algorithms —
// whose frequentness test is not partitionwise decomposable — generate
// candidates with their family's expected-support engine at the provable
// esup floor of their acceptance region (see the partition package doc).
func partitionPlan(e Entry) (phase1 string, bound partition.Bound) {
	switch e.Family {
	case ExpectedSupportFamily:
		return e.Name, partition.BoundESup
	case ExactFamily:
		return "UApriori", partition.BoundMarkov
	default: // ApproxFamily
		switch e.Name {
		case "PDUApriori":
			return "UApriori", partition.BoundPoisson
		case "NDUH-Mine":
			return "UH-Mine", partition.BoundNormal
		default: // NDUApriori
			return "UApriori", partition.BoundNormal
		}
	}
}

// PartitionPhase1 returns the registry name of the miner that generates
// phase-1 candidates for the named algorithm in a partitioned mine, and
// whether the algorithm is partition-capable at all. External orchestrators
// (the serving layer's shard backend) use it to mine shards themselves.
func PartitionPhase1(name string) (string, bool) {
	e, ok := lookup(name)
	if !ok || !e.Partition {
		return "", false
	}
	p1, _ := partitionPlan(e)
	return p1, true
}

// Phase1ThresholdsFor returns the expected-support candidate floor the
// named algorithm's partitioned mines use for phase-1 candidate generation:
// the provable esup lower bound of its acceptance region (own threshold for
// expected-support miners, the Markov / Poisson / Normal inversions for the
// probabilistic families), relaxed by the engine's float-slack margin and
// expressed as thresholds for a database of n transactions. External
// maintainers (the incremental-maintenance ledger, umine/internal/incmine)
// use it as the support cutoff below which an itemset provably cannot be in
// the algorithm's result set. Non-partitionable algorithms (MCSampling) have
// no such floor and are errors.
func Phase1ThresholdsFor(name string, th core.Thresholds, n int) (core.Thresholds, error) {
	e, ok := lookup(name)
	if !ok {
		return core.Thresholds{}, errUnknown(name)
	}
	if !e.Partition {
		return core.Thresholds{}, fmt.Errorf("algo: %s has no expected-support candidate floor", name)
	}
	_, bound := partitionPlan(e)
	return partition.Phase1Thresholds(bound, th, n)
}

// familySemantics maps a registry family to its frequentness definition.
func familySemantics(f Family) core.Semantics {
	if f == ExpectedSupportFamily {
		return core.ExpectedSupport
	}
	return core.Probabilistic
}

// SemanticsOf returns the named algorithm's frequentness semantics from the
// registry's family metadata — no miner is constructed. Unknown names
// report ok = false.
func SemanticsOf(name string) (core.Semantics, bool) {
	e, ok := lookup(name)
	if !ok {
		return core.ExpectedSupport, false
	}
	return familySemantics(e.Family), true
}

// NewPartitionEngine returns the SON two-phase partition engine for the
// named algorithm, configured from opts (Partitions, Workers, Progress).
// The engine implements core.Miner; its completed mines are bit-identical
// to single-shot mines of the algorithm. Callers needing custom shard
// execution (e.g. the serving layer's scatter-gather) may override the
// MineShard hook afterwards. Non-partitionable algorithms (MCSampling) and
// unknown names are errors.
func NewPartitionEngine(name string, opts core.Options) (*partition.Engine, error) {
	entry, ok := lookup(name)
	if !ok {
		return nil, errUnknown(name)
	}
	if !entry.Partition {
		return nil, fmt.Errorf("algo: %s does not support partitioned mining", name)
	}
	p1name, bound := partitionPlan(entry)
	return &partition.Engine{
		Algorithm: entry.Name,
		Sem:       familySemantics(entry.Family),
		K:         opts.Partitions,
		Workers:   opts.Workers,
		Progress:  opts.Progress,
		Phase1Thresholds: func(th core.Thresholds, n int) (core.Thresholds, error) {
			return partition.Phase1Thresholds(bound, th, n)
		},
		MineShard: func(ctx context.Context, _ int, db *core.Database, th core.Thresholds, workers int) ([]core.Itemset, core.MiningStats, error) {
			m := MustNewWith(p1name, core.Options{Workers: workers})
			rs, err := m.Mine(ctx, db, th)
			if err != nil {
				return nil, core.MiningStats{}, err
			}
			return rs.Itemsets(), rs.Stats, nil
		},
		NewPhase2: func(o core.Options, allow func(core.Itemset) bool) (core.Miner, error) {
			m := entry.New()
			core.ApplyOptions(m, o)
			if allow != nil {
				rm, ok := m.(core.RestrictableMiner)
				if !ok {
					return nil, fmt.Errorf("algo: %s is marked partitionable but does not implement core.RestrictableMiner", entry.Name)
				}
				rm.SetRestrict(allow)
			}
			return m, nil
		},
	}, nil
}

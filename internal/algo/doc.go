// Package algo registers every miner implementation behind a uniform
// registry (registry.go) keyed by the paper's experiment labels. The
// paper's qualitative comparison tables are reproduced below as reference
// documentation.
//
// # Table 3 — expected-support-based algorithms
//
//	Method      Search strategy       Data structure
//	UApriori    breadth-first         none (candidate tries per level)
//	UFP-growth  depth-first           UFP-tree
//	UH-Mine     depth-first           UH-Struct
//
// # Table 4 — determining the frequent probability of one itemset
//
//	Method    Complexity          Accuracy
//	DP        O(N² · min_sup)     exact
//	DC        O(N log N)          exact
//	Chernoff  O(N)                false positives possible (upper bound)
//
// The Chernoff bound needs only the expected support, which the shared
// counting pass produces as a by-product, so its marginal cost inside the
// Apriori loop is O(1); the O(N) in the table is the cost of obtaining µ
// from scratch.
//
// # Table 5 — approximate probabilistic algorithms
//
//	Method      Framework  Approximation
//	PDUApriori  UApriori   Poisson (λ = esup; decision only, no per-itemset
//	                       probability values)
//	NDUApriori  UApriori   Normal (esup + variance, continuity-corrected)
//	NDUH-Mine   UH-Mine    Normal (esup + variance, continuity-corrected)
//
// All three run the frequentness test in O(N) per itemset — the same order
// as an expected-support test — which is the paper's bridge between the two
// frequent-itemset definitions. The registry's MCSampling extension also
// answers approximately, with a sampling budget independent of N.
package algo

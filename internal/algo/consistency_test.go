package algo

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/dataset"
)

func TestRegistryCompleteness(t *testing.T) {
	if got := len(Names()); got != 11 {
		t.Fatalf("registry has %d algorithms, want 11 (8 + Chernoff variants + sampling extension)", got)
	}
	if got := len(ByFamily(ExpectedSupportFamily)); got != 3 {
		t.Errorf("expected-support family size %d", got)
	}
	if got := len(ByFamily(ExactFamily)); got != 4 {
		t.Errorf("exact family size %d", got)
	}
	if got := len(ByFamily(ApproxFamily)); got != 4 {
		t.Errorf("approx family size %d", got)
	}
	for _, name := range Names() {
		m, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Errorf("registry name %q vs miner name %q", name, m.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestExpectedSupportFamilyAgrees: the paper's uniform-platform requirement —
// all three expected-support algorithms must return identical result sets
// (itemsets, expected supports, variances) on every dataset.
func TestExpectedSupportFamilyAgrees(t *testing.T) {
	// Thresholds are chosen per dataset: dense profiles explode
	// combinatorially below min_esup ≈ 0.3 (the paper's own Connect sweep
	// stops at 0.4), while sparse profiles only produce results at low
	// thresholds.
	type familyCase struct {
		db  *core.Database
		ths []float64
	}
	var cases []familyCase
	if testing.Short() {
		// The dense profiles at low thresholds dominate this test's ~8 s;
		// short mode keeps one workload per density class so the
		// uniform-platform property still gets cross-checked in CI, and
		// generates only those databases.
		cases = []familyCase{
			{coretest.PaperDB(), []float64{0.4, 0.2, 0.05}},
			{dataset.Accident.GenerateUncertain(0.001, 2), []float64{0.4, 0.2}},
			{dataset.Gazelle.GenerateUncertain(0.01, 4), []float64{0.05}},
		}
	} else {
		cases = []familyCase{
			{coretest.PaperDB(), []float64{0.4, 0.2, 0.05}},
			{dataset.Connect.GenerateUncertain(0.003, 1), []float64{0.7, 0.5, 0.4}},
			{dataset.Accident.GenerateUncertain(0.001, 2), []float64{0.4, 0.2, 0.1}},
			{dataset.Kosarak.GenerateUncertain(0.0005, 3), []float64{0.05, 0.01}},
			{dataset.Gazelle.GenerateUncertain(0.01, 4), []float64{0.05, 0.01}},
		}
	}
	for _, tc := range cases {
		db := tc.db
		for _, minESup := range tc.ths {
			th := core.Thresholds{MinESup: minESup}
			var ref *core.ResultSet
			for _, name := range ByFamily(ExpectedSupportFamily) {
				rs, err := MustNew(name).Mine(context.Background(), db, th)
				if err != nil {
					t.Fatalf("%s on %s: %v", name, db.Name, err)
				}
				if ref == nil {
					ref = rs
					continue
				}
				if rs.Len() != ref.Len() {
					t.Fatalf("%s on %s (min_esup %v): %d itemsets, %s found %d",
						name, db.Name, th.MinESup, rs.Len(), ref.Algorithm, ref.Len())
				}
				for i := range ref.Results {
					a, b := ref.Results[i], rs.Results[i]
					if !a.Itemset.Equal(b.Itemset) {
						t.Fatalf("%s vs %s on %s: itemset %d: %v vs %v",
							ref.Algorithm, name, db.Name, i, a.Itemset, b.Itemset)
					}
					if math.Abs(a.ESup-b.ESup) > 1e-6 || math.Abs(a.Var-b.Var) > 1e-6 {
						t.Fatalf("%s vs %s on %s: %v aggregates differ: (%v,%v) vs (%v,%v)",
							ref.Algorithm, name, db.Name, a.Itemset, a.ESup, a.Var, b.ESup, b.Var)
					}
				}
			}
		}
	}
}

// TestExactFamilyAgrees: the four exact miners must return identical
// probabilistic frequent itemsets with matching exact probabilities.
func TestExactFamilyAgrees(t *testing.T) {
	dbs := []*core.Database{
		coretest.PaperDB(),
		dataset.Accident.GenerateUncertain(0.0008, 5),
		dataset.Gazelle.GenerateUncertain(0.008, 6),
	}
	ths := []core.Thresholds{
		{MinSup: 0.3, PFT: 0.9},
		{MinSup: 0.15, PFT: 0.5},
	}
	for _, db := range dbs {
		for _, th := range ths {
			var ref *core.ResultSet
			for _, name := range ByFamily(ExactFamily) {
				rs, err := MustNew(name).Mine(context.Background(), db, th)
				if err != nil {
					t.Fatalf("%s on %s: %v", name, db.Name, err)
				}
				if ref == nil {
					ref = rs
					continue
				}
				if rs.Len() != ref.Len() {
					t.Fatalf("%s on %s: %d itemsets, %s found %d",
						name, db.Name, rs.Len(), ref.Algorithm, ref.Len())
				}
				for i := range ref.Results {
					a, b := ref.Results[i], rs.Results[i]
					if !a.Itemset.Equal(b.Itemset) || math.Abs(a.FreqProb-b.FreqProb) > 1e-7 {
						t.Fatalf("%s vs %s on %s: result %d: %v fp %v vs %v fp %v",
							ref.Algorithm, name, db.Name, i, a.Itemset, a.FreqProb, b.Itemset, b.FreqProb)
					}
				}
			}
		}
	}
}

// TestBridgeBetweenDefinitions reproduces the paper's central claim: on a
// large database, mining with the probabilistic definition via the Normal
// approximation returns (almost) the same itemsets as the exact
// probabilistic miners, and both can be obtained at expected-support cost.
func TestBridgeBetweenDefinitions(t *testing.T) {
	if testing.Short() {
		t.Skip("dense exact-vs-approximate workload (~11 s) in -short mode")
	}
	db := dataset.Connect.GenerateUncertain(0.01, 7)
	th := core.Thresholds{MinSup: 0.4, PFT: 0.9}
	exactRS, err := MustNew("DCB").Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	approxRS, err := MustNew("NDUH-Mine").Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if exactRS.Len() == 0 {
		t.Fatal("workload produced no exact results")
	}
	exactSet := map[string]bool{}
	for _, r := range exactRS.Results {
		exactSet[r.Itemset.Key()] = true
	}
	inter := 0
	for _, r := range approxRS.Results {
		if exactSet[r.Itemset.Key()] {
			inter++
		}
	}
	precision := float64(inter) / math.Max(1, float64(approxRS.Len()))
	recall := float64(inter) / float64(exactRS.Len())
	if precision < 0.95 || recall < 0.95 {
		t.Fatalf("bridge too weak: precision %.3f recall %.3f", precision, recall)
	}
}

// TestRandomizedCrossFamilyProperty: on random small databases, every
// probabilistic frequent itemset found by the exact miners must also be
// expected-support frequent at some low threshold (sanity linkage), and
// result sets must be internally anti-monotone.
func TestRandomizedCrossFamilyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 15; trial++ {
		db := coretest.RandomDB(rng, 25, 6, 0.5)
		th := core.Thresholds{MinSup: 0.25, PFT: 0.6}
		rs, err := MustNew("DCB").Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		frequent := map[string]bool{}
		for _, r := range rs.Results {
			frequent[r.Itemset.Key()] = true
		}
		for _, r := range rs.Results {
			x := r.Itemset
			if len(x) < 2 {
				continue
			}
			for drop := range x {
				sub := make(core.Itemset, 0, len(x)-1)
				for i, it := range x {
					if i != drop {
						sub = append(sub, it)
					}
				}
				if !frequent[sub.Key()] {
					t.Fatalf("anti-monotonicity violated: %v frequent, subset %v not", x, sub)
				}
			}
			// Linkage: frequent probability > pft requires nontrivial
			// expected support.
			if r.ESup <= 0 {
				t.Fatalf("%v frequent with esup %v", x, r.ESup)
			}
		}
	}
}

package sampling

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/dataset"
	"umine/internal/prob"
)

func TestWorldBudget(t *testing.T) {
	m := &Miner{}
	// ⌈ln(2/0.05) / (2·0.02²)⌉ = ⌈4611.1…⌉ = 4612.
	if got := m.WorldBudget(); got != 4612 {
		t.Errorf("default world budget %d, want 4612", got)
	}
	m = &Miner{Worlds: 100}
	if got := m.WorldBudget(); got != 100 {
		t.Errorf("explicit world budget %d, want 100", got)
	}
	m = &Miner{Epsilon: 0.1, Delta: 0.1}
	// ⌈ln(20)/0.02⌉ = ⌈149.8⌉ = 150.
	if got := m.WorldBudget(); got != 150 {
		t.Errorf("budget(0.1, 0.1) = %d, want 150", got)
	}
}

func TestRejectsBadThresholds(t *testing.T) {
	db := coretest.PaperDB()
	m := &Miner{}
	for _, th := range []core.Thresholds{
		{MinSup: 0, PFT: 0.5},
		{MinSup: 0.5, PFT: 0},
		{MinSup: 0.5, PFT: 1},
		{MinSup: 1.5, PFT: 0.5},
	} {
		if _, err := m.Mine(context.Background(), db, th); err == nil {
			t.Errorf("thresholds %+v accepted", th)
		}
	}
}

func TestPaperExample2(t *testing.T) {
	db := coretest.PaperDB()
	m := &Miner{}
	rs, err := m.Mine(context.Background(), db, core.Thresholds{MinSup: 0.5, PFT: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := rs.Lookup(core.NewItemset(0))
	if !ok {
		t.Fatal("{A} not probabilistic frequent under sampling")
	}
	// Exact value from Table 1 is 0.80. Early stopping may settle the
	// decision (0.80 > pft = 0.7) after a few batches, so the reported
	// estimate carries the coarser early-stop error bound.
	if math.Abs(a.FreqProb-0.80) > 0.12 {
		t.Errorf("estimated Pr{sup(A) ≥ 2} = %v, exact 0.80", a.FreqProb)
	}
}

func TestEstimateMatchesExactTail(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	est := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(60)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		msc := 1 + rng.Intn(n)
		exact := prob.PBFreqProbDP(ps, msc)
		// Centering pft on the exact value keeps the Hoeffding interval
		// from excluding it, so the estimator spends its full budget and
		// the returned value (not just the ≥pft decision) is tight. With
		// early stopping active the value is deliberately coarser.
		got := estimateFreqProb(est, ps, msc, exact, 8000, 0.02)
		if math.Abs(got-exact) > 0.05 {
			t.Errorf("trial %d (n=%d, msc=%d): estimate %v, exact %v", trial, n, msc, got, exact)
		}
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := estimateFreqProb(rng, []float64{0.5, 0.5}, 0, 0.9, 100, 0.02); got != 1 {
		t.Errorf("msc=0 should be certainly frequent, got %v", got)
	}
	if got := estimateFreqProb(rng, []float64{0.5, 0.5}, 3, 0.9, 100, 0.02); got != 0 {
		t.Errorf("msc > #trials should be impossible, got %v", got)
	}
	// All-ones probabilities: support is deterministic.
	ones := []float64{1, 1, 1, 1}
	if got := estimateFreqProb(rng, ones, 4, 0.9, 100, 0.02); got != 1 {
		t.Errorf("deterministic support 4 vs msc 4: got %v, want 1", got)
	}
}

func TestSampleSupportShortCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// msc=1 with a certain first trial must hit immediately.
	if !sampleSupportAtLeast(rng, []float64{1, 0.5, 0.5}, 1) {
		t.Error("certain trial missed")
	}
	// Impossible target.
	if sampleSupportAtLeast(rng, []float64{0.5, 0.5}, 3) {
		t.Error("support exceeded the number of trials")
	}
}

func TestAgreesWithExactMinerOnProfile(t *testing.T) {
	db := dataset.Gazelle.GenerateUncertain(0.01, 3)
	th := core.Thresholds{MinSup: 0.02, PFT: 0.9}
	m := &Miner{Seed: 5}
	got, err := m.Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&exactRef{}).mine(db, th)
	if err != nil {
		t.Fatal(err)
	}
	// Membership agreement: with ε = 0.02, disagreement is possible only
	// for itemsets whose exact frequent probability is within ~ε of pft.
	exactSet := map[string]float64{}
	for _, r := range exact.Results {
		exactSet[r.Itemset.Key()] = r.FreqProb
	}
	for _, r := range got.Results {
		fp, ok := exactSet[r.Itemset.Key()]
		if !ok {
			// Must be a borderline candidate.
			continue
		}
		if math.Abs(r.FreqProb-fp) > 0.05 {
			t.Errorf("%v: sampled %v vs exact %v", r.Itemset, r.FreqProb, fp)
		}
	}
	missed := 0
	for _, r := range exact.Results {
		if _, ok := got.Lookup(r.Itemset); !ok {
			missed++
			if r.FreqProb > 0.97 {
				t.Errorf("%v has exact frequent probability %v but was missed", r.Itemset, r.FreqProb)
			}
		}
	}
	if exact.Len() > 0 && float64(missed)/float64(exact.Len()) > 0.05 {
		t.Errorf("missed %d of %d exact itemsets", missed, exact.Len())
	}
}

func TestDeterministicWithFixedSeed(t *testing.T) {
	db := dataset.Gazelle.GenerateUncertain(0.005, 4)
	th := core.Thresholds{MinSup: 0.02, PFT: 0.9}
	a, err := (&Miner{Seed: 9}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Miner{Seed: 9}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different result sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Results {
		if !a.Results[i].Itemset.Equal(b.Results[i].Itemset) ||
			a.Results[i].FreqProb != b.Results[i].FreqProb {
			t.Fatalf("same seed, different result %d", i)
		}
	}
}

func TestChernoffAblationConsistent(t *testing.T) {
	db := dataset.Gazelle.GenerateUncertain(0.005, 4)
	th := core.Thresholds{MinSup: 0.02, PFT: 0.9}
	with, err := (&Miner{Seed: 9}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	without, err := (&Miner{Seed: 9, DisableChernoff: true}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	// Chernoff pruning is a sound filter: it may only remove candidates the
	// estimator would reject anyway, so the frequent sets agree up to
	// borderline sampling noise. Require full agreement on this seed.
	if with.Len() != without.Len() {
		t.Fatalf("Chernoff pruning changed result count: %d vs %d", with.Len(), without.Len())
	}
	if with.Stats.ChernoffPruned == 0 {
		t.Error("Chernoff pruning never fired on this workload")
	}
	if without.Stats.ChernoffPruned != 0 {
		t.Error("disabled Chernoff pruning still fired")
	}
}

// TestEstimatorUnbiasedProperty: over random probability vectors, the
// estimate must stay within 3ε of the exact tail (quick property check).
func TestEstimatorUnbiasedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + int(seed%40+40)%40
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = r.Float64()
		}
		msc := 1 + int(seed%int64(n)+int64(n))%n
		exact := prob.PBFreqProbDP(ps, msc)
		got := estimateFreqProb(rng, ps, msc, exact, 6000, 0.02)
		return math.Abs(got-exact) <= 0.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// exactRef wraps the DP computation as a minimal exact reference without
// importing the exact package (avoiding a dependency cycle in tests is not
// an issue here, but the direct DP keeps the reference independent).
type exactRef struct{}

func (e *exactRef) mine(db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	msc := th.MinSupCount(db.N())
	m := &Miner{Worlds: 1} // reuse the Apriori plumbing below instead
	_ = m
	// Direct level-wise mining with the exact DP decision.
	var results []core.Result
	frequent := map[string]bool{}
	// Level 1.
	esup := db.ItemESup()
	var level []core.Itemset
	for it := range esup {
		x := core.NewItemset(core.Item(it))
		ps := nonzero(db.TxProbs(x))
		fp := prob.PBFreqProbDP(ps, msc)
		if fp > th.PFT+core.Eps {
			e, v := db.ESupVar(x)
			results = append(results, core.Result{Itemset: x, ESup: e, Var: v, FreqProb: fp})
			frequent[x.Key()] = true
			level = append(level, x)
		}
	}
	// Higher levels by pairwise join.
	for len(level) > 0 {
		var next []core.Itemset
		seen := map[string]bool{}
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				cand, ok := join(level[i], level[j])
				if !ok || seen[cand.Key()] {
					continue
				}
				seen[cand.Key()] = true
				ps := nonzero(db.TxProbs(cand))
				fp := prob.PBFreqProbDP(ps, msc)
				if fp > th.PFT+core.Eps {
					e, v := db.ESupVar(cand)
					results = append(results, core.Result{Itemset: cand, ESup: e, Var: v, FreqProb: fp})
					next = append(next, cand)
				}
			}
		}
		level = next
	}
	core.SortResults(results)
	return &core.ResultSet{Algorithm: "exact-ref", Semantics: core.Probabilistic, Thresholds: th, N: db.N(), Results: results}, nil
}

func nonzero(ps []float64) []float64 {
	out := ps[:0:0]
	for _, p := range ps {
		if p > 0 {
			out = append(out, p)
		}
	}
	return out
}

func join(a, b core.Itemset) (core.Itemset, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	if a[len(a)-1] == b[len(b)-1] {
		return nil, false
	}
	out := a.Extend(b[len(b)-1])
	return out, true
}

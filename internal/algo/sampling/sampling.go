// Package sampling implements the possible-world sampling miner of Calders,
// Garboni and Goethals ("Efficient pattern mining of uncertain data with
// sampling", PAKDD 2010) — the paper's reference [11] and the one
// representative approach of its related work that the eight benchmarked
// algorithms do not cover. It is provided as an extension to the paper's
// line-up: a third way to answer probabilistic-frequentness queries,
// between the exact miners (§3.2) and the moment-based approximations
// (§3.3).
//
// The estimator: the support of X is a Poisson-Binomial random variable
// with one Bernoulli trial per transaction, success probability
// p_t = Pr(X ⊆ T_t). Sampling a possible world instantiates every trial;
// the fraction of sampled worlds where sup(X) ≥ ⌈N·min_sup⌉ is an unbiased
// estimate of the frequent probability. By Hoeffding's inequality,
// w = ⌈ln(2/δ) / (2ε²)⌉ worlds bound the estimation error by ε with
// confidence 1−δ — independent of N, which is the method's selling point on
// very large databases.
//
// The miner shares the Apriori breadth-first framework with the paper's
// other Apriori-family algorithms (frequent probability is anti-monotone,
// so subset pruning remains sound) and adds two standard refinements:
//
//   - Chernoff pre-pruning (Lemma 1), which discards hopeless candidates
//     for the cost of the expected support the counting pass already paid;
//   - sequential early stopping: worlds are sampled in batches and the
//     Hoeffding confidence interval is checked after each batch, so
//     clear-cut candidates (the vast majority — §4.5 observes most frequent
//     probabilities sit at 1) settle after a few hundred worlds instead of
//     the worst-case budget.
package sampling

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"umine/internal/algo/apriori"
	"umine/internal/core"
	"umine/internal/prob"
)

// Defaults for the (ε, δ) estimation guarantee.
const (
	// DefaultEpsilon bounds the frequent-probability estimation error.
	DefaultEpsilon = 0.02
	// DefaultDelta is the probability of exceeding DefaultEpsilon.
	DefaultDelta = 0.05
	// batchSize is the number of worlds sampled between early-stop checks.
	batchSize = 128
)

// Miner is the possible-world sampling miner. The zero value uses the
// default (ε, δ) guarantee, Chernoff pre-pruning and a fixed seed; it is
// ready to use.
type Miner struct {
	// Epsilon is the error bound ε of the estimate (DefaultEpsilon if 0).
	Epsilon float64
	// Delta is the confidence parameter δ (DefaultDelta if 0).
	Delta float64
	// Worlds overrides the Hoeffding-derived sample budget when positive.
	Worlds int
	// DisableChernoff switches the Lemma 1 pre-pruning off (ablation).
	DisableChernoff bool
	// Seed makes runs reproducible; the zero seed is a valid fixed seed.
	Seed int64
	// Workers bounds the goroutines of the shared counting pass (0 or 1 =
	// serial; negative = GOMAXPROCS). The Monte-Carlo decide step itself
	// stays serial: its candidates share one sequential RNG stream, and
	// keeping that stream in candidate order is what makes runs
	// reproducible — so results are identical for every worker count.
	Workers int
	// Progress observes the run per level (may be nil).
	Progress core.ProgressFunc
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *Miner) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *Miner) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetProgress implements core.ObservableMiner.
func (m *Miner) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner.
func (m *Miner) Name() string { return "MCSampling" }

// Semantics implements core.Miner.
func (m *Miner) Semantics() core.Semantics { return core.Probabilistic }

// WorldBudget returns the number of sampled worlds per candidate implied by
// the configuration: Worlds when set, else ⌈ln(2/δ)/(2ε²)⌉.
func (m *Miner) WorldBudget() int {
	if m.Worlds > 0 {
		return m.Worlds
	}
	eps := m.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	delta := m.Delta
	if delta <= 0 {
		delta = DefaultDelta
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// Mine implements core.Miner.
func (m *Miner) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.Probabilistic); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	msc := th.MinSupCount(db.N())
	budget := m.WorldBudget()
	eps := m.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	rng := rand.New(rand.NewSource(m.Seed))
	var stats core.MiningStats

	cfg := apriori.Config{
		CollectProbs: true,
		// Workers shards the counting pass only; ParallelDecide stays off
		// because Decide consumes the shared RNG stream in candidate order.
		Workers: m.Workers,
		Name:    m.Name(),
		Exec:    m.Exec,
		Decide: func(c *apriori.Candidate) (core.Result, bool) {
			if !m.DisableChernoff && prob.ChernoffInfrequent(c.ESup, msc, th.PFT) {
				stats.ChernoffPruned++
				return core.Result{}, false
			}
			fp := estimateFreqProb(rng, c.Probs, msc, th.PFT, budget, eps)
			if fp > th.PFT+core.Eps {
				return core.Result{Itemset: c.Items, ESup: c.ESup, Var: c.Var, FreqProb: fp}, true
			}
			return core.Result{}, false
		},
	}
	if m.Progress != nil {
		// Fold the Decide closure's family-specific counter into the
		// framework's snapshots, so streamed events (and the CLIs' partial
		// stats on cancellation) report the Chernoff pruning work. Decide
		// and the level-boundary emissions share the mining goroutine
		// (ParallelDecide is off), so the read is unsynchronized but safe.
		fn := m.Progress
		cfg.Progress = func(ev core.ProgressEvent) {
			ev.Stats.ChernoffPruned += stats.ChernoffPruned
			fn(ev)
		}
	}
	results, runStats, err := apriori.Run(ctx, db, cfg)
	if err != nil {
		return nil, err
	}
	runStats.Add(stats)
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.Probabilistic,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      runStats,
	}, nil
}

// estimateFreqProb Monte-Carlo-estimates Pr{sup ≥ msc} from the nonzero
// containment probabilities, stopping early once the running Hoeffding
// interval excludes pft.
func estimateFreqProb(rng *rand.Rand, ps []float64, msc int, pft float64, budget int, eps float64) float64 {
	if msc <= 0 {
		return 1
	}
	if msc > len(ps) {
		return 0
	}
	hits, worlds := 0, 0
	for worlds < budget {
		n := batchSize
		if rem := budget - worlds; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			if sampleSupportAtLeast(rng, ps, msc) {
				hits++
			}
		}
		worlds += n
		// Early stop when the 1−δ interval around the running estimate
		// already decides the ≥/< pft question with margin ε: the final
		// answer cannot change sides.
		est := float64(hits) / float64(worlds)
		radius := math.Sqrt(math.Log(2/0.01) / (2 * float64(worlds)))
		if est-radius > pft+eps || est+radius < pft-eps {
			return est
		}
	}
	return float64(hits) / float64(worlds)
}

// sampleSupportAtLeast draws one possible world restricted to the
// candidate's trials and reports whether its support reaches msc. Two
// standard short-circuits: success as soon as msc hits are seen, failure as
// soon as the remaining trials cannot reach it.
func sampleSupportAtLeast(rng *rand.Rand, ps []float64, msc int) bool {
	hits := 0
	for i, p := range ps {
		if rng.Float64() < p {
			hits++
			if hits >= msc {
				return true
			}
		}
		if hits+len(ps)-i-1 < msc {
			return false
		}
	}
	return false
}

package algo

import (
	"testing"

	"umine/internal/core"
)

// TestRegistryCapabilityMetadata cross-checks the registry's declared
// capability flags against the constructed miner types, so the cheap
// metadata path (SupportsWorkers) can never drift from the implementation.
func TestRegistryCapabilityMetadata(t *testing.T) {
	for _, e := range Entries() {
		m := e.New()
		_, isParallel := m.(core.ParallelMiner)
		if e.Parallel != isParallel {
			t.Errorf("%s: registry declares Parallel=%v but the miner type says %v", e.Name, e.Parallel, isParallel)
		}
		if got := SupportsWorkers(e.Name); got != isParallel {
			t.Errorf("SupportsWorkers(%q) = %v, want %v", e.Name, got, isParallel)
		}
		// Every registered miner must stream progress: the serving layer and
		// the CLIs rely on the hook for liveness and partial stats.
		if _, ok := m.(core.ObservableMiner); !ok {
			t.Errorf("%s: does not implement core.ObservableMiner", e.Name)
		}
	}
	if SupportsWorkers("NoSuchMiner") {
		t.Error("SupportsWorkers on an unknown name must report false")
	}
}

package algo

import (
	"testing"

	"umine/internal/core"
)

// TestRegistryCapabilityMetadata cross-checks the registry's declared
// capability flags against the constructed miner types, so the cheap
// metadata path (SupportsWorkers) can never drift from the implementation.
func TestRegistryCapabilityMetadata(t *testing.T) {
	for _, e := range Entries() {
		m := e.New()
		_, isParallel := m.(core.ParallelMiner)
		if e.Parallel != isParallel {
			t.Errorf("%s: registry declares Parallel=%v but the miner type says %v", e.Name, e.Parallel, isParallel)
		}
		if got := SupportsWorkers(e.Name); got != isParallel {
			t.Errorf("SupportsWorkers(%q) = %v, want %v", e.Name, got, isParallel)
		}
		// Every registered miner must stream progress: the serving layer and
		// the CLIs rely on the hook for liveness and partial stats.
		if _, ok := m.(core.ObservableMiner); !ok {
			t.Errorf("%s: does not implement core.ObservableMiner", e.Name)
		}
		// Partition capability requires the phase-2 restriction hook, and a
		// valid phase-1 plan must exist exactly for the capable entries.
		_, isRestrictable := m.(core.RestrictableMiner)
		if e.Partition && !isRestrictable {
			t.Errorf("%s: registry declares Partition=true but the miner does not implement core.RestrictableMiner", e.Name)
		}
		if got := SupportsPartitions(e.Name); got != e.Partition {
			t.Errorf("SupportsPartitions(%q) = %v, want %v", e.Name, got, e.Partition)
		}
		p1, ok := PartitionPhase1(e.Name)
		if ok != e.Partition {
			t.Errorf("PartitionPhase1(%q) ok=%v, want %v", e.Name, ok, e.Partition)
		}
		if sem, semOK := SemanticsOf(e.Name); !semOK || sem != m.Semantics() {
			t.Errorf("SemanticsOf(%q) = (%v, %v), want (%v, true)", e.Name, sem, semOK, m.Semantics())
		}
		if ok {
			m1, err := New(p1)
			if err != nil {
				t.Errorf("PartitionPhase1(%q) = %q: %v", e.Name, p1, err)
			} else if m1.Semantics() != core.ExpectedSupport {
				t.Errorf("PartitionPhase1(%q) = %q answers %v; phase-1 candidate mines must be expected-support",
					e.Name, p1, m1.Semantics())
			}
		}
	}
	if SupportsWorkers("NoSuchMiner") {
		t.Error("SupportsWorkers on an unknown name must report false")
	}
	if SupportsPartitions("NoSuchMiner") {
		t.Error("SupportsPartitions on an unknown name must report false")
	}
	if _, err := NewPartitionEngine("MCSampling", core.Options{Partitions: 2}); err == nil {
		t.Error("NewPartitionEngine(MCSampling) must fail (non-partitionable)")
	}
	// NewWith quietly ignores Partitions on a non-partitionable algorithm,
	// like every other unsupported knob.
	if m, err := NewWith("MCSampling", core.Options{Partitions: 4}); err != nil || m.Name() != "MCSampling" {
		t.Errorf("NewWith(MCSampling, Partitions=4) = (%v, %v), want the plain miner", m, err)
	}
}

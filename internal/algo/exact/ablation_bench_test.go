package exact

import (
	"context"
	"fmt"
	"testing"

	"umine/internal/core"
	"umine/internal/dataset"
	"umine/internal/prob"
)

// BenchmarkAblationChernoff isolates the effect of the Lemma 1 pruning —
// the paper's Figure 5 DPB-vs-DPNB / DCB-vs-DCNB comparison — on one fixed
// workload, reporting the filter rate next to the time.
func BenchmarkAblationChernoff(b *testing.B) {
	db := dataset.Accident.GenerateUncertain(0.001, 42)
	th := core.Thresholds{MinSup: 0.3, PFT: 0.9}
	for _, method := range []Method{DP, DC} {
		for _, chernoff := range []bool{false, true} {
			m := &Miner{Method: method, Chernoff: chernoff}
			b.Run(m.Name(), func(b *testing.B) {
				var stats core.MiningStats
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rs, err := m.Mine(context.Background(), db, th)
					if err != nil {
						b.Fatal(err)
					}
					stats = rs.Stats
				}
				b.ReportMetric(float64(stats.ChernoffPruned), "chernoff-pruned")
				b.ReportMetric(float64(stats.ExactEvaluations), "exact-evals")
			})
		}
	}
}

// BenchmarkAblationDCTruncation isolates the DC design decision of keeping
// support-distribution vectors truncated at msc+1 entries with an absorbing
// tail bucket, versus carrying the full N+1-entry distribution through the
// recursion. Exactness of the truncated tail is proved by
// TestDCTruncationExact; this measures what the truncation buys.
func BenchmarkAblationDCTruncation(b *testing.B) {
	db := dataset.Accident.GenerateUncertain(0.002, 9)
	x := topPair(db)
	ps := nonzeroProbs(db, x)
	for _, minSup := range []float64{0.1, 0.3, 0.6} {
		msc := core.Thresholds{MinSup: minSup, PFT: 0.9}.MinSupCount(db.N())
		b.Run(fmt.Sprintf("truncated/min_sup=%.1f", minSup), func(b *testing.B) {
			b.ReportAllocs()
			var fp float64
			for i := 0; i < b.N; i++ {
				fp = freqProbDC(ps, msc)
			}
			b.ReportMetric(fp, "freq-prob")
		})
		b.Run(fmt.Sprintf("full/min_sup=%.1f", minSup), func(b *testing.B) {
			b.ReportAllocs()
			var fp float64
			for i := 0; i < b.N; i++ {
				fp = freqProbDCFull(ps, msc)
			}
			b.ReportMetric(fp, "freq-prob")
		})
	}
}

// freqProbDCFull is the un-truncated baseline: the recursion carries
// complete distributions and the tail is summed at the end.
func freqProbDCFull(ps []float64, msc int) float64 {
	if msc <= 0 {
		return 1
	}
	if msc > len(ps) {
		return 0
	}
	dist := supportDistFull(ps)
	tail := 0.0
	for i := msc; i < len(dist); i++ {
		tail += dist[i]
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

func supportDistFull(ps []float64) []float64 {
	if len(ps) <= dcLeafSize {
		return prob.PBDist(ps)
	}
	mid := len(ps) / 2
	return prob.Convolve(supportDistFull(ps[:mid]), supportDistFull(ps[mid:]))
}

// TestFreqProbDCFullMatchesTruncated keeps the ablation baseline honest.
func TestFreqProbDCFullMatchesTruncated(t *testing.T) {
	db := dataset.Accident.GenerateUncertain(0.0005, 11)
	x := topPair(db)
	ps := nonzeroProbs(db, x)
	for _, minSup := range []float64{0.05, 0.2, 0.5, 0.9} {
		msc := core.Thresholds{MinSup: minSup, PFT: 0.9}.MinSupCount(db.N())
		a := freqProbDC(ps, msc)
		b := freqProbDCFull(ps, msc)
		if d := a - b; d > 1e-9 || d < -1e-9 {
			t.Fatalf("min_sup %v: truncated %v vs full %v", minSup, a, b)
		}
	}
}

// topPair returns the pair of the two items with the highest expected
// supports — a candidate whose probability vector is long and non-trivial.
func topPair(db *core.Database) core.Itemset {
	esup := db.ItemESup()
	best, second := core.Item(0), core.Item(1)
	for it := range esup {
		if esup[it] > esup[best] {
			second, best = best, core.Item(it)
		} else if esup[it] > esup[second] && core.Item(it) != best {
			second = core.Item(it)
		}
	}
	return core.NewItemset(best, second)
}

func nonzeroProbs(db *core.Database, x core.Itemset) []float64 {
	var ps []float64
	for _, p := range db.TxProbs(x) {
		if p > 0 {
			ps = append(ps, p)
		}
	}
	return ps
}

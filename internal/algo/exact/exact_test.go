package exact

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/prob"
)

func allMiners() []*Miner {
	return []*Miner{
		{Method: DP},
		{Method: DP, Chernoff: true},
		{Method: DC},
		{Method: DC, Chernoff: true},
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{"DPNB": true, "DPB": true, "DCNB": true, "DCB": true}
	for _, m := range allMiners() {
		if !want[m.Name()] {
			t.Errorf("unexpected name %q", m.Name())
		}
		delete(want, m.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing names: %v", want)
	}
}

func TestPaperExample2(t *testing.T) {
	// Example 2: with min_sup = 0.5 and pft = 0.7 on a 4-transaction
	// database where sup(A) has the Table 2 distribution, {A} is a
	// probabilistic frequent itemset. The paper's Table 2 distribution
	// {0.1, 0.18, 0.4, 0.32} arises from per-transaction probabilities
	// that we reverse-engineer as (0.8, 0.8, 0.5) over three transactions
	// containing A — but Table 2's numbers are their own example; here we
	// verify our miners reproduce the tail logic on the Table 1 database.
	db := coretest.PaperDB()
	th := core.Thresholds{MinSup: 0.5, PFT: 0.7}
	for _, m := range allMiners() {
		rs, err := m.Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		// Exact tail for A over (0.8, 0.8, 0.5): Pr{sup ≥ 2} =
		// 0.8·0.8·0.5 + 0.8·0.8·0.5 ... compute via reference.
		wantFP := coretest.FreqProb(db, core.NewItemset(coretest.A), 2)
		r, ok := rs.Lookup(core.NewItemset(coretest.A))
		if wantFP > 0.7 {
			if !ok {
				t.Fatalf("%s: {A} missing (exact fp %v)", m.Name(), wantFP)
			}
			if math.Abs(r.FreqProb-wantFP) > 1e-9 {
				t.Fatalf("%s: fp(A) = %v, want %v", m.Name(), r.FreqProb, wantFP)
			}
		} else if ok {
			t.Fatalf("%s: {A} reported with exact fp %v ≤ 0.7", m.Name(), wantFP)
		}
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 30; trial++ {
		db := coretest.RandomDB(rng, 8+rng.Intn(15), 5, 0.4+0.4*rng.Float64())
		minSup := 0.1 + 0.4*rng.Float64()
		pft := 0.1 + 0.8*rng.Float64()
		want := coretest.BruteForceProbabilistic(db, minSup, pft)
		for _, m := range allMiners() {
			rs, err := m.Mine(context.Background(), db, core.Thresholds{MinSup: minSup, PFT: pft})
			if err != nil {
				t.Fatal(err)
			}
			if rs.Len() != len(want) {
				t.Fatalf("%s trial %d: got %d itemsets, want %d (min_sup=%v pft=%v)",
					m.Name(), trial, rs.Len(), len(want), minSup, pft)
			}
			for i := range want {
				if !rs.Results[i].Itemset.Equal(want[i].Itemset) {
					t.Fatalf("%s: itemset %d: %v vs %v", m.Name(), i, rs.Results[i].Itemset, want[i].Itemset)
				}
				if math.Abs(rs.Results[i].FreqProb-want[i].FreqProb) > 1e-9 {
					t.Fatalf("%s: %v fp %v vs %v", m.Name(), want[i].Itemset,
						rs.Results[i].FreqProb, want[i].FreqProb)
				}
			}
		}
	}
}

func TestDPAndDCAgreeOnLargerData(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	db := coretest.RandomDB(rng, 300, 8, 0.4)
	th := core.Thresholds{MinSup: 0.15, PFT: 0.8}
	dp, err := (&Miner{Method: DP}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := (&Miner{Method: DC}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Len() != dc.Len() {
		t.Fatalf("DP found %d, DC found %d", dp.Len(), dc.Len())
	}
	if dp.Len() == 0 {
		t.Fatal("empty result set makes the test vacuous; lower min_sup")
	}
	for i := range dp.Results {
		if !dp.Results[i].Itemset.Equal(dc.Results[i].Itemset) {
			t.Fatalf("itemset %d differs", i)
		}
		if math.Abs(dp.Results[i].FreqProb-dc.Results[i].FreqProb) > 1e-7 {
			t.Fatalf("%v: DP fp %v vs DC fp %v", dp.Results[i].Itemset,
				dp.Results[i].FreqProb, dc.Results[i].FreqProb)
		}
	}
}

func TestChernoffVariantsReturnIdenticalResults(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 10; trial++ {
		db := coretest.RandomDB(rng, 60, 7, 0.5)
		th := core.Thresholds{MinSup: 0.3, PFT: 0.85}
		for _, method := range []Method{DP, DC} {
			plain, err := (&Miner{Method: method}).Mine(context.Background(), db, th)
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := (&Miner{Method: method, Chernoff: true}).Mine(context.Background(), db, th)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Len() != pruned.Len() {
				t.Fatalf("%v: %d vs %d itemsets with Chernoff", method, plain.Len(), pruned.Len())
			}
			for i := range plain.Results {
				if !plain.Results[i].Itemset.Equal(pruned.Results[i].Itemset) ||
					math.Abs(plain.Results[i].FreqProb-pruned.Results[i].FreqProb) > 1e-12 {
					t.Fatalf("%v: result %d differs with Chernoff", method, i)
				}
			}
		}
	}
}

func TestChernoffReducesExactEvaluations(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	db := coretest.RandomDB(rng, 200, 10, 0.3)
	th := core.Thresholds{MinSup: 0.4, PFT: 0.9}
	plain, err := (&Miner{Method: DC}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := (&Miner{Method: DC, Chernoff: true}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.ChernoffPruned == 0 {
		t.Fatal("Chernoff pruning never fired on a sparse high-threshold workload")
	}
	if pruned.Stats.ExactEvaluations >= plain.Stats.ExactEvaluations {
		t.Fatalf("Chernoff did not reduce exact evaluations: %d vs %d",
			pruned.Stats.ExactEvaluations, plain.Stats.ExactEvaluations)
	}
}

// TestDCTruncationExact is the DESIGN.md invariant: the truncated
// divide-and-conquer distribution matches the untruncated Poisson-Binomial
// on every point mass below msc and on the lumped tail.
func TestDCTruncationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(300)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		cap := 1 + rng.Intn(n)
		got := supportDistDC(ps, cap)
		full := prob.PBDist(ps)
		for k := 0; k < cap && k < len(got)-1; k++ {
			if math.Abs(got[k]-full[k]) > 1e-8 {
				t.Fatalf("n=%d cap=%d: point mass %d: %v vs %v", n, cap, k, got[k], full[k])
			}
		}
		tail := 0.0
		for k := cap; k <= n; k++ {
			tail += full[k]
		}
		if math.Abs(got[len(got)-1]-tail) > 1e-8 {
			t.Fatalf("n=%d cap=%d: tail %v vs %v", n, cap, got[len(got)-1], tail)
		}
	}
}

func TestFreqProbDCEdges(t *testing.T) {
	if got := freqProbDC([]float64{0.5}, 0); got != 1 {
		t.Errorf("msc 0 → %v", got)
	}
	if got := freqProbDC([]float64{0.5}, 2); got != 0 {
		t.Errorf("msc beyond n → %v", got)
	}
	if got := freqProbDC(nil, 1); got != 0 {
		t.Errorf("empty ps → %v", got)
	}
}

func TestRejectsBadThresholds(t *testing.T) {
	db := coretest.PaperDB()
	bad := []core.Thresholds{
		{MinSup: 0, PFT: 0.5},
		{MinSup: 0.5, PFT: 0},
		{MinSup: 0.5, PFT: 1},
	}
	for _, m := range allMiners() {
		for _, th := range bad {
			if _, err := m.Mine(context.Background(), db, th); err == nil {
				t.Errorf("%s accepted %+v", m.Name(), th)
			}
		}
	}
}

func TestLargeNStability(t *testing.T) {
	// 2000 transactions stress the FFT path and DP rolling row; DP and DC
	// must agree to 1e-6 on a frequent and a borderline itemset.
	rng := rand.New(rand.NewSource(506))
	n := 2000
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = 0.3 + 0.4*rng.Float64()
	}
	for _, msc := range []int{int(0.45 * float64(n)), int(0.5 * float64(n)), int(0.55 * float64(n))} {
		dp := prob.PBFreqProbDP(ps, msc)
		dc := freqProbDC(ps, msc)
		if math.Abs(dp-dc) > 1e-6 {
			t.Fatalf("msc=%d: DP %v vs DC %v", msc, dp, dc)
		}
	}
}

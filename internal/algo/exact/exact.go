// Package exact implements the exact probabilistic frequent itemset miners
// of the paper's §3.2: the dynamic-programming algorithm DP [Bernecker et
// al. 2009] and the divide-and-conquer algorithm DC [Sun et al. 2010], each
// with and without the Chernoff bound-based pruning of Lemma 1 — the four
// configurations the experiments call DPNB, DPB, DCNB and DCB.
//
// All four share the Apriori breadth-first framework (anti-monotonicity of
// frequent probability justifies subset pruning) and differ only in the
// per-itemset frequentness test:
//
//   - DP evaluates the §3.2.1 recurrence in O(N·msc) per itemset (the
//     paper's O(N²·min_sup));
//   - DC builds the support distribution by recursive halving with
//     FFT-accelerated convolution, O(N log N) per itemset, truncating every
//     vector at msc with an exact absorbing tail bucket;
//   - the B variants first test the Chernoff upper bound (O(1) given the
//     expected support, which the shared counting pass already produced)
//     and skip the exact computation when the bound already rules the
//     candidate out.
package exact

import (
	"context"
	"fmt"
	"sync/atomic"

	"umine/internal/algo/apriori"
	"umine/internal/core"
	"umine/internal/kernel"
	"umine/internal/prob"
)

// Method selects the exact frequent-probability computation.
type Method int

const (
	// DP is the dynamic-programming method (§3.2.1).
	DP Method = iota
	// DC is the divide-and-conquer method with FFT (§3.2.2).
	DC
)

func (m Method) String() string {
	switch m {
	case DP:
		return "DP"
	case DC:
		return "DC"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Miner is one of the four exact probabilistic miners.
type Miner struct {
	// Method selects DP or DC.
	Method Method
	// Chernoff enables the Lemma 1 pruning (the "B" variants).
	Chernoff bool
	// Workers bounds the goroutines used by the counting pass and the
	// per-candidate frequent-probability verification (0 or 1 = serial, the
	// paper's platform; negative = GOMAXPROCS). Each candidate's DP
	// recurrence or DC convolution is independent, so verification — the
	// dominant cost of the exact family — shards embarrassingly; results
	// are identical for every worker count.
	Workers int
	// Progress observes the run per level (may be nil).
	Progress core.ProgressFunc
	// Restrict confines the run to a candidate superset, turning the
	// per-candidate DP/DC verification into a pass over just the allowed
	// itemsets (phase 2 of the SON partition engine); see
	// apriori.Config.Restrict. May be nil.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *Miner) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *Miner) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetRestrict implements core.RestrictableMiner.
func (m *Miner) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// SetProgress implements core.ObservableMiner.
func (m *Miner) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner, using the paper's experiment labels:
// DPNB, DPB, DCNB, DCB.
func (m *Miner) Name() string {
	suffix := "NB"
	if m.Chernoff {
		suffix = "B"
	}
	return m.Method.String() + suffix
}

// Semantics implements core.Miner.
func (m *Miner) Semantics() core.Semantics { return core.Probabilistic }

// Mine implements core.Miner. Cancellation lands between candidate
// verifications — the per-candidate DP/DC computation is the dominant cost
// of the whole platform, so that is exactly where aborting matters.
func (m *Miner) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.Probabilistic); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	msc := th.MinSupCount(db.N())

	freqProb := m.freqProbFunc(msc)

	// Decide runs on the worker pool (ParallelDecide), so its two counters
	// are atomics, folded into the run stats afterwards.
	var chernoffPruned, exactEvals atomic.Int64
	cfg := apriori.Config{
		CollectProbs:   true,
		Workers:        m.Workers,
		ParallelDecide: true,
		Name:           m.Name(),
		Restrict:       m.Restrict,
		Exec:           m.Exec,
		Decide: func(c *apriori.Candidate) (core.Result, bool) {
			if m.Chernoff && prob.ChernoffInfrequent(c.ESup, msc, th.PFT) {
				chernoffPruned.Add(1)
				return core.Result{}, false
			}
			exactEvals.Add(1)
			fp := freqProb(c.Probs)
			if fp > th.PFT+core.Eps {
				return core.Result{Itemset: c.Items, ESup: c.ESup, Var: c.Var, FreqProb: fp}, true
			}
			return core.Result{}, false
		},
	}
	if m.Progress != nil {
		// Fold the atomics into the framework's snapshot so level events
		// carry the family-specific counters too.
		fn := m.Progress
		cfg.Progress = func(ev core.ProgressEvent) {
			ev.Stats.ChernoffPruned += int(chernoffPruned.Load())
			ev.Stats.ExactEvaluations += int(exactEvals.Load())
			fn(ev)
		}
	}
	results, runStats, err := apriori.Run(ctx, db, cfg)
	if err != nil {
		return nil, err
	}
	runStats.ChernoffPruned += int(chernoffPruned.Load())
	runStats.ExactEvaluations += int(exactEvals.Load())
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.Probabilistic,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      runStats,
	}, nil
}

// freqProbFunc returns the per-itemset exact tail computation for the
// configured method. The DP method dispatches to the internal/kernel
// verification kernel — bit-identical to the prob package's reference
// recurrence, which Exec.DisableKernel forces at runtime.
func (m *Miner) freqProbFunc(msc int) func(ps []float64) float64 {
	switch m.Method {
	case DP:
		if m.Exec.DisableKernel {
			return func(ps []float64) float64 { return prob.PBFreqProbDP(ps, msc) }
		}
		return func(ps []float64) float64 { return kernel.FreqTailDP(ps, msc) }
	case DC:
		return func(ps []float64) float64 { return freqProbDC(ps, msc) }
	default:
		panic(fmt.Sprintf("exact: unknown method %d", m.Method))
	}
}

// freqProbDC computes Pr{sup ≥ msc} by the §3.2.2 divide-and-conquer:
// split the probability vector, recursively build each half's support
// distribution (truncated at msc with an absorbing bucket), and convolve
// the halves (FFT-backed above the cutoff). Exact for the tail at msc.
func freqProbDC(ps []float64, msc int) float64 {
	if msc <= 0 {
		return 1
	}
	if msc > len(ps) {
		return 0
	}
	dist := supportDistDC(ps, msc)
	t := dist[len(dist)-1]
	if t > 1 {
		t = 1
	}
	if t < 0 {
		t = 0
	}
	return t
}

// dcLeafSize is the divide-and-conquer base case: below this many
// transactions the distribution is built by direct sequential convolution.
const dcLeafSize = 32

// supportDistDC returns the truncated support distribution (absorbing
// bucket at index cap) of the Poisson-Binomial with the given trial
// probabilities.
func supportDistDC(ps []float64, cap int) []float64 {
	if len(ps) <= dcLeafSize {
		return prob.PBDistTruncated(ps, cap)
	}
	mid := len(ps) / 2
	left := supportDistDC(ps[:mid], cap)
	right := supportDistDC(ps[mid:], cap)
	return prob.ConvolveTruncated(left, right, cap)
}

package algo

import (
	"context"
	"math"
	"runtime"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/dataset"
)

// TestWorkerCountDeterminism is the contract of the parallel-execution
// extension: every registered miner must return a bit-identical ResultSet
// for Workers ∈ {1, 2, GOMAXPROCS}. The shared layer guarantees it by
// construction — work decompositions depend only on the input and shard
// merges happen in canonical order — and this test (run under -race in CI)
// flushes both determinism regressions and shard-merge data races.
func TestWorkerCountDeterminism(t *testing.T) {
	dbs := []*core.Database{
		coretest.PaperDB(),
		// Large enough that the counting pass splits into several chunks
		// (parallel.ChunkSizeFor's minimum chunk is 512 transactions) and
		// the UH-Mine fan-out has many first-level prefixes.
		dataset.Accident.GenerateUncertain(0.004, 11),
		dataset.Gazelle.GenerateUncertain(0.03, 12),
	}
	if testing.Short() {
		// Keep the multi-chunk database — it is the one that exercises the
		// shard merges — but drop the densest workload so the race-enabled
		// CI job stays fast.
		dbs = dbs[:2]
	}
	workerCounts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		workerCounts = append(workerCounts, p)
	}
	for _, db := range dbs {
		for _, name := range Names() {
			m := MustNew(name)
			var th core.Thresholds
			switch m.Semantics() {
			case core.ExpectedSupport:
				th = core.Thresholds{MinESup: 0.2}
			case core.Probabilistic:
				th = core.Thresholds{MinSup: 0.25, PFT: 0.9}
			}
			var ref *core.ResultSet
			for _, w := range workerCounts {
				rs, err := MustNewWith(name, core.Options{Workers: w}).Mine(context.Background(), db, th)
				if err != nil {
					t.Fatalf("%s on %s (workers=%d): %v", name, db.Name, w, err)
				}
				if ref == nil {
					ref = rs
					continue
				}
				requireIdenticalResults(t, name, db.Name, workerCounts[0], w, ref, rs)
			}
		}
	}
}

// requireIdenticalResults asserts two result sets are bit-identical:
// the same itemsets in the same order with the same ESup, Var and FreqProb
// bits (NaN-safe), and matching work counters.
func requireIdenticalResults(t *testing.T, algoName, dbName string, refW, w int, ref, got *core.ResultSet) {
	t.Helper()
	if got.Len() != ref.Len() {
		t.Fatalf("%s on %s: workers=%d found %d itemsets, workers=%d found %d",
			algoName, dbName, w, got.Len(), refW, ref.Len())
	}
	for i := range ref.Results {
		a, b := ref.Results[i], got.Results[i]
		if !a.Itemset.Equal(b.Itemset) {
			t.Fatalf("%s on %s: result %d: workers=%d %v vs workers=%d %v",
				algoName, dbName, i, refW, a.Itemset, w, b.Itemset)
		}
		if !sameBits(a.ESup, b.ESup) || !sameBits(a.Var, b.Var) || !sameBits(a.FreqProb, b.FreqProb) {
			t.Fatalf("%s on %s: %v measures differ between workers=%d and workers=%d: (%v,%v,%v) vs (%v,%v,%v)",
				algoName, dbName, a.Itemset, refW, w, a.ESup, a.Var, a.FreqProb, b.ESup, b.Var, b.FreqProb)
		}
	}
	// Work counters must match too: parallelism may not change how much
	// algorithmic work happens, only who performs it. (PeakTrackedBytes is
	// part of the per-level accounting and merges by max, so it is equal as
	// well.)
	if ref.Stats != got.Stats {
		t.Fatalf("%s on %s: stats differ between workers=%d and workers=%d:\n%+v\nvs\n%+v",
			algoName, dbName, refW, w, ref.Stats, got.Stats)
	}
}

// sameBits compares floats bitwise, treating all NaNs as equal (PDUApriori
// reports FreqProb = NaN by design).
func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

package algo

import (
	"context"
	"testing"

	"umine/internal/core"
	"umine/internal/dataset"
)

// The execution-tuning acceptance gate: every registered configuration must
// return a bit-identical ResultSet — itemsets, measure bits AND MiningStats —
// across Workers ∈ {1, 4, 8} × steal {on, off} × kernel {optimized, scalar
// reference}. core.ExecTuning only moves work between implementations that
// are asserted equal (the work-stealing scheduler vs inline recursion, the
// internal/kernel intersection loops vs their scalar references), so no
// combination may move a bit. Run under -race with -cpu 1,4,8 in CI, this is
// also the shake-out for scheduler and accumulator races.
func TestExecTuningDeterminism(t *testing.T) {
	// Large enough that counting splits into several chunks, the UH-Mine
	// fan-out has many first-level prefixes, and occurrence lists cross the
	// fork cutoff so subtrees actually land on the stealing pool.
	db := dataset.Accident.GenerateUncertain(0.004, 11)
	workerCounts := []int{1, 4, 8}
	tunings := []core.ExecTuning{
		{},
		{DisableSteal: true},
		{DisableKernel: true},
		{DisableSteal: true, DisableKernel: true},
	}
	if testing.Short() {
		// Keep the extremes: everything on vs everything off already crosses
		// both implementation boundaries.
		workerCounts = []int{1, 8}
		tunings = []core.ExecTuning{{}, {DisableSteal: true, DisableKernel: true}}
	}
	for _, name := range Names() {
		var th core.Thresholds
		switch MustNew(name).Semantics() {
		case core.ExpectedSupport:
			th = core.Thresholds{MinESup: 0.2}
		case core.Probabilistic:
			th = core.Thresholds{MinSup: 0.25, PFT: 0.9}
		}
		var ref *core.ResultSet
		for _, w := range workerCounts {
			for _, tu := range tunings {
				rs, err := MustNewWith(name, core.Options{Workers: w, Exec: tu}).
					Mine(context.Background(), db, th)
				if err != nil {
					t.Fatalf("%s on %s (workers=%d, tuning=%+v): %v", name, db.Name, w, tu, err)
				}
				if ref == nil {
					ref = rs
					continue
				}
				requireIdenticalResults(t, name, db.Name, workerCounts[0], w, ref, rs)
			}
		}
	}
}

package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/dataset"
)

func TestRejectsNonPositiveK(t *testing.T) {
	if _, _, err := (&Miner{}).Mine(coretest.PaperDB()); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, _, err := (&Miner{K: -3}).Mine(coretest.PaperDB()); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestTopKOnPaperDB(t *testing.T) {
	got, _, err := (&Miner{K: 3}).Mine(coretest.PaperDB())
	if err != nil {
		t.Fatal(err)
	}
	// Item esups of Table 1: C 2.6, A 2.1, F 1.8, B 1.4, E 1.3, D 1.2; the
	// best 2-itemset {A,C} reaches 0.72+0.72+0.40 = 1.84, beating F — so
	// the top-3 are C, A, {A,C}. Note a pure item-level top-k would get
	// this wrong, which is why the miner explores multi-item extensions.
	want := []struct {
		set  core.Itemset
		esup float64
	}{
		{core.NewItemset(coretest.C), 2.6},
		{core.NewItemset(coretest.A), 2.1},
		{core.NewItemset(coretest.A, coretest.C), 1.84},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i, w := range want {
		if !got[i].Itemset.Equal(w.set) || math.Abs(got[i].ESup-w.esup) > 1e-9 {
			t.Errorf("result %d = %v (%v), want %v (%v)", i, got[i].Itemset, got[i].ESup, w.set, w.esup)
		}
	}
}

// bruteTopK computes the reference answer by full enumeration.
func bruteTopK(db *core.Database, k int) []core.Result {
	var all []core.Result
	for _, x := range coretest.AllItemsets(db.NumItems) {
		esup, v := db.ESupVar(x)
		if esup > 0 {
			all = append(all, core.Result{Itemset: x, ESup: esup, Var: v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return better(all[i], all[j]) })
	if k < len(all) {
		all = all[:k]
	}
	return all
}

func TestTopKAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 25; trial++ {
		db := coretest.RandomDB(rng, 20, 7, 0.5)
		for _, k := range []int{1, 3, 10, 50} {
			got, _, err := (&Miner{K: k}).Mine(db)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTopK(db, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: got %d results, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if !got[i].Itemset.Equal(want[i].Itemset) || math.Abs(got[i].ESup-want[i].ESup) > 1e-9 {
					t.Fatalf("trial %d k=%d result %d: %v (%v) vs brute %v (%v)",
						trial, k, i, got[i].Itemset, got[i].ESup, want[i].Itemset, want[i].ESup)
				}
			}
		}
	}
}

func TestTopKMaxLen(t *testing.T) {
	db := coretest.PaperDB()
	got, _, err := (&Miner{K: 20, MaxLen: 1}).Mine(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // six items exist
		t.Fatalf("MaxLen=1 returned %d results, want 6", len(got))
	}
	for _, r := range got {
		if len(r.Itemset) != 1 {
			t.Fatalf("MaxLen=1 produced %v", r.Itemset)
		}
	}
}

func TestTopKDescendingAndDeterministic(t *testing.T) {
	db := dataset.Gazelle.GenerateUncertain(0.01, 8)
	a, _, err := (&Miner{K: 40}).Mine(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a); i++ {
		if a[i].ESup > a[i-1].ESup+1e-12 {
			t.Fatalf("results not descending at %d", i)
		}
	}
	b, _, err := (&Miner{K: 40}).Mine(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Itemset.Equal(b[i].Itemset) {
			t.Fatal("top-k not deterministic")
		}
	}
}

// TestTopKPrefixProperty: the top-(k-1) must be a prefix of the top-k.
func TestTopKPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := coretest.RandomDB(rng, 30, 6, 0.6)
	prev, _, err := (&Miner{K: 1}).Mine(db)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 20; k++ {
		cur, _, err := (&Miner{K: k}).Mine(db)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prev {
			if !cur[i].Itemset.Equal(prev[i].Itemset) {
				t.Fatalf("top-%d is not a prefix of top-%d at %d", k-1, k, i)
			}
		}
		prev = cur
	}
}

func TestTopKFewerResultsThanK(t *testing.T) {
	db := core.MustNewDatabase("two-items", [][]core.Unit{
		{{Item: 0, Prob: 0.5}, {Item: 1, Prob: 0.5}},
	})
	got, _, err := (&Miner{K: 100}).Mine(db)
	if err != nil {
		t.Fatal(err)
	}
	// {0}, {1}, {0,1} — three itemsets with positive esup.
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
}

func BenchmarkTopK(b *testing.B) {
	db := dataset.Accident.GenerateUncertain(0.002, 10)
	for _, k := range []int{10, 100, 1000} {
		m := &Miner{K: k}
		b.Run(map[int]string{10: "k=10", 100: "k=100", 1000: "k=1000"}[k], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Mine(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

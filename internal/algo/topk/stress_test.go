package topk

import (
	"math/rand"
	"testing"

	"umine/internal/core/coretest"
)

// TestTopKStressManyShapes drives the rising-threshold search across many
// database shapes and k values, always cross-checking the brute force.
func TestTopKStressManyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(40)
		m := 2 + rng.Intn(8)
		density := 0.2 + 0.6*rng.Float64()
		db := coretest.RandomDB(rng, n, m, density)
		k := 1 + rng.Intn(30)
		got, _, err := (&Miner{K: k}).Mine(db)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopK(db, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d m=%d k=%d): %d results, want %d",
				trial, n, m, k, len(got), len(want))
		}
		for i := range want {
			if !got[i].Itemset.Equal(want[i].Itemset) {
				t.Fatalf("trial %d result %d: %v, want %v", trial, i, got[i].Itemset, want[i].Itemset)
			}
		}
	}
}

// Package topk implements top-k frequent itemset mining over uncertain
// databases: return the k itemsets with the highest expected support,
// without a user-supplied threshold. Choosing min_esup is the hardest part
// of using a threshold-based miner in practice (the paper's experiments
// sweep it across four orders of magnitude to find informative settings);
// top-k replaces the guess with a budget.
//
// The algorithm is the classical rising-threshold level-wise search adapted
// to expected support: a bounded min-heap holds the best k itemsets seen;
// its minimum is the dynamic threshold. Because expected support is
// anti-monotone (a superset's esup never exceeds a subset's), only itemsets
// whose esup reaches the current threshold can have descendants in the
// final top-k, so the expansion frontier is pruned by the same bound the
// heap maintains. The threshold only rises, making every prune permanently
// safe.
package topk

import (
	"container/heap"
	"fmt"

	"umine/internal/algo/apriori"
	"umine/internal/core"
)

// Miner mines the top-K expected-support frequent itemsets. K must be
// positive; the zero value of the other fields is ready to use.
type Miner struct {
	// K is the number of itemsets to return.
	K int
	// MaxLen bounds the itemset length (0 = unbounded).
	MaxLen int
}

// Mine returns the K itemsets with the highest expected support in
// descending esup order (ties broken canonically), with exact ESup and Var
// filled in. Fewer than K results are returned only when the database has
// fewer distinct itemsets with positive expected support.
func (m *Miner) Mine(db *core.Database) ([]core.Result, core.MiningStats, error) {
	if m.K <= 0 {
		return nil, core.MiningStats{}, fmt.Errorf("topk: K must be positive, got %d", m.K)
	}
	var stats core.MiningStats

	h := &resultHeap{}
	heap.Init(h)
	push := func(r core.Result) {
		if h.Len() < m.K {
			heap.Push(h, r)
			return
		}
		if better(r, (*h)[0]) {
			(*h)[0] = r
			heap.Fix(h, 0)
		}
	}
	threshold := func() float64 {
		if h.Len() < m.K {
			return 0
		}
		return (*h)[0].ESup
	}

	// Level 1: all items in one scan.
	esup, varsup := db.ItemESupVar()
	stats.DBScans++
	var frontier []core.Itemset
	level := make([]core.Result, 0, len(esup))
	for it, e := range esup {
		stats.CandidatesGenerated++
		if e <= 0 {
			continue
		}
		level = append(level, core.Result{Itemset: core.NewItemset(core.Item(it)), ESup: e, Var: varsup[it]})
	}
	for _, r := range level {
		push(r)
	}

	// Higher levels: expand only itemsets that still clear the rising bound.
	for k := 2; ; k++ {
		if m.MaxLen > 0 && k > m.MaxLen {
			break
		}
		frontier = frontier[:0]
		th := threshold()
		for _, r := range level {
			if r.ESup >= th-core.Eps {
				frontier = append(frontier, r.Itemset)
			}
		}
		if len(frontier) < 2 {
			break
		}
		cands := join(frontier, &stats)
		if len(cands) == 0 {
			break
		}
		countLevel(db, cands, k, &stats)
		level = level[:0]
		th = threshold()
		for i := range cands {
			if cands[i].ESup <= 0 {
				continue
			}
			r := core.Result{Itemset: cands[i].Items, ESup: cands[i].ESup, Var: cands[i].Var}
			push(r)
			// Keep for expansion if it can still have top-k descendants.
			if r.ESup >= th-core.Eps {
				level = append(level, r)
			}
		}
		if len(level) == 0 {
			break
		}
	}

	out := make([]core.Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(core.Result)
	}
	return out, stats, nil
}

// better orders results by (ESup desc, canonical itemset asc) — the heap
// keeps the k largest under this total order, so results are deterministic
// even among ties.
func better(a, b core.Result) bool {
	if a.ESup != b.ESup {
		return a.ESup > b.ESup
	}
	return a.Itemset.Compare(b.Itemset) < 0
}

// resultHeap is a min-heap under better (its root is the worst kept result).
type resultHeap []core.Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(core.Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// join builds k+1 candidates from the frontier with the classic prefix join
// and subset check (all k-subsets must be in the frontier).
func join(frontier []core.Itemset, stats *core.MiningStats) []apriori.Candidate {
	core.SortItemsets(frontier)
	inFrontier := make(map[string]bool, len(frontier))
	for _, f := range frontier {
		inFrontier[f.Key()] = true
	}
	var cands []apriori.Candidate
	sub := core.Itemset{}
	for i := 0; i < len(frontier); i++ {
		for j := i + 1; j < len(frontier); j++ {
			a, b := frontier[i], frontier[j]
			if !prefixEqual(a, b) {
				break // sorted: once prefixes diverge, no more joins for i
			}
			cand := a.Extend(b[len(b)-1])
			stats.CandidatesGenerated++
			ok := true
			for drop := 0; drop < len(cand)-2 && ok; drop++ {
				sub = sub[:0]
				for x, it := range cand {
					if x != drop {
						sub = append(sub, it)
					}
				}
				if !inFrontier[sub.Key()] {
					ok = false
					stats.CandidatesPruned++
				}
			}
			if ok {
				cands = append(cands, apriori.Candidate{Items: cand})
			}
		}
	}
	return cands
}

func prefixEqual(a, b core.Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countLevel counts the candidates in one scan via the shared framework's
// trie counting (public wrapper).
func countLevel(db *core.Database, cands []apriori.Candidate, k int, stats *core.MiningStats) {
	apriori.CountLevel(db, cands, k, false, stats)
}

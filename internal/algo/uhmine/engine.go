// Package uhmine implements UH-Mine [Aggarwal, Li, Wang, Wang 2009], the
// depth-first hyper-structure miner (paper §3.1.3), as a reusable engine:
// the expected-support miner (this package's Miner) and the paper's new
// NDUH-Mine algorithm (package approx) differ only in the per-itemset
// frequentness test they plug into the engine.
//
// The UH-Struct stores each transaction once, projected to frequent items
// and reordered by descending item expected support. Mining recursively
// builds head tables: for a prefix P, the occurrence list holds, per
// transaction containing P, the position after P's last item and the
// accumulated containment probability Pr(P ⊆ t). Extending P by item j
// scans the occurrences once — the uncertain analogue of H-Mine's hyperlink
// adjustment — so no conditional databases are materialized and memory
// stays bounded by the UH-Struct plus one occurrence list per recursion
// level (the behaviour behind the paper's Figure 4 memory curves).
package uhmine

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"umine/internal/core"
	"umine/internal/parallel"
)

// Decide is the per-itemset frequentness test: given the (canonical)
// itemset with its expected support and support variance, it returns the
// result to report and whether the itemset is frequent. Depth-first search
// only extends frequent prefixes (anti-monotonicity).
type Decide func(items core.Itemset, esup, varsup float64) (core.Result, bool)

// runit is one unit of a UH-Struct row: the item's frequency rank and its
// existential probability. Rows are sorted by rank ascending (most frequent
// first).
type runit struct {
	rank int32
	prob float64
}

// occ is one entry of a head table: transaction row, scan start position,
// and accumulated prefix containment probability.
type occ struct {
	row int32
	pos int32
	acc float64
}

// Engine holds the knobs shared by UH-Mine and NDUH-Mine.
type Engine struct {
	// ItemFloor, when positive, removes items whose expected support is
	// below this absolute count before the UH-Struct is built, exactly like
	// the head-table construction of §3.1.3. Expected-support semantics set
	// it to N·min_esup; probabilistic semantics may use a safe lower bound
	// (or leave 0 and let Decide filter).
	ItemFloor float64
	// Decide is the frequentness test. Required. With Workers > 1 it is
	// called concurrently from the first-level fan-out, so it must be safe
	// for concurrent use (the threshold tests of UH-Mine and NDUH-Mine are
	// pure functions of their arguments).
	Decide Decide
	// Workers bounds the goroutines used for the first-level prefix
	// fan-out: every frequent singleton roots an independent depth-first
	// subtree, so subtrees mine concurrently into per-prefix accumulators
	// that merge in frequency-rank (canonical head-table) order. 0 or 1 =
	// serial, the paper's platform; negative = GOMAXPROCS. Results are
	// identical for every worker count: each subtree's computation is
	// untouched, only who executes it changes.
	Workers int
	// Restrict, when non-nil, confines the search to a pre-computed
	// candidate superset: items and prefix extensions for which it returns
	// false are neither reported nor descended into (nor kept in the
	// UH-Struct, for singletons) — exactly as if Decide had rejected them.
	// Everything allowed is aggregated with the engine's ordinary head-table
	// arithmetic, so when the allowed set is a superset of the unrestricted
	// run's accepted itemsets the restricted run is bit-identical. This is
	// the SON partition engine's phase-2 hook (umine/internal/partition).
	// Called concurrently from the fan-out when Workers > 1; it may receive
	// transient itemsets it must not retain.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning. DisableSteal confines
	// parallelism to the first-level fan-out — the pre-steal execution
	// shape — instead of forking large extension subtrees onto the
	// work-stealing pool.
	Exec core.ExecTuning
	// Name labels ProgressEvents with the mounting miner's registry name
	// (UH-Mine and NDUH-Mine share the engine).
	Name string
	// Progress, when non-nil, receives a PhaseLevel event after the
	// singleton pass, one PhaseSubtree event per completed first-level
	// prefix subtree (possibly from concurrent worker goroutines — see the
	// core.ProgressFunc contract) and a final PhaseDone event.
	Progress core.ProgressFunc
}

// Mine runs the engine and returns results in canonical order plus work
// counters. Cancellation lands between candidate extensions inside every
// prefix subtree (and stops the fan-out from dispatching further subtrees),
// so a canceled mine returns ctx.Err() within one extension's head-table
// scan of work; a completed mine is identical to an uncancellable run.
func (e *Engine) Mine(ctx context.Context, db *core.Database) ([]core.Result, core.MiningStats, error) {
	var stats core.MiningStats
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	// Pass 1: per-item aggregates (one scan — expectation and variance
	// together, the paper's bridge property).
	esup, varsup := db.ItemESupVar()
	stats.DBScans++

	// Head table: frequent items by Decide (after the optional floor),
	// ordered by descending expected support.
	order, rank := core.FrequencyOrder(esup, e.ItemFloor)
	var kept []core.Item
	var results []core.Result
	for _, it := range order {
		if e.Restrict != nil && !e.Restrict(core.Itemset{it}) {
			continue
		}
		stats.CandidatesGenerated++
		res, ok := e.Decide(core.Itemset{it}, esup[it], varsup[it])
		if ok {
			results = append(results, res)
			kept = append(kept, it)
		}
	}
	e.Progress.Emit(e.Name, core.PhaseLevel, 1, stats)
	if len(kept) == 0 {
		core.SortResults(results)
		e.Progress.Emit(e.Name, core.PhaseDone, 1, stats)
		return results, stats, nil
	}
	// Re-rank over kept items only, preserving frequency order.
	keptRank := make([]int, db.NumItems)
	for i := range keptRank {
		keptRank[i] = -1
	}
	items := make([]core.Item, len(kept))
	for pos, it := range kept {
		keptRank[it] = pos
		items[pos] = it
	}
	_ = rank

	// Pass 2: build the UH-Struct rows.
	stats.DBScans++
	rows := make([][]runit, 0, db.N())
	var structBytes int64
	for j, n := 0, db.N(); j < n; j++ {
		tx := db.Tx(j)
		var row []runit
		for i, it := range tx.Items {
			if r := keptRank[it]; r >= 0 {
				row = append(row, runit{rank: int32(r), prob: tx.Probs[i]})
			}
		}
		if len(row) == 0 {
			continue
		}
		sort.Slice(row, func(i, j int) bool { return row[i].rank < row[j].rank })
		rows = append(rows, row)
		structBytes += int64(len(row)) * int64(unsafe.Sizeof(runit{}))
	}
	stats.TrackPeak(structBytes)

	// Top-level head table: one occurrence per row.
	top := make([]occ, len(rows))
	for i := range rows {
		top[i] = occ{row: int32(i), pos: 0, acc: 1}
	}

	topBytes := int64(len(top)) * int64(unsafe.Sizeof(occ{}))
	stats.TrackPeak(structBytes + topBytes)

	// Singletons were already decided and reported above; descend directly
	// into each frequent item's head table. Every frequent singleton roots
	// an independent depth-first subtree scheduled as one work-stealing
	// task, and inside a subtree the recursion forks large extension
	// subtrees back onto the pool (the fork cutoff is a pure function of
	// the occurrence-list size, never of worker availability), so a single
	// skewed prefix no longer pins one worker for the tail of the run.
	// Every task mines into its own accumulator node; nodes merge in fork
	// order and roots in frequency-rank order below, so the result list —
	// and, after the canonical sort, the ResultSet — is identical for every
	// worker count and steal setting. Peak memory stays accounted on the
	// serial platform's DFS-path model (a forked child inherits the live
	// bytes the inline recursion would have at that point), keeping the
	// Figure 4-style memory reports comparable across worker counts.
	scratchPool := &sync.Pool{New: func() any {
		return &scratch{esup: make([]float64, len(items)), varsup: make([]float64, len(items))}
	}}
	// statsBase freezes the pre-fan-out totals so concurrent subtree
	// completions can emit consistent snapshots without sharing counters.
	statsBase := stats
	done := ctx.Done()
	forkOK := !e.Exec.DisableSteal

	aggs := make([]*rootAgg, len(items))
	tasks := make([]parallel.Task, len(items))
	for r := range items {
		r := r
		ra := &rootAgg{engine: e, base: statsBase}
		ra.pending.Store(1)
		aggs[r] = ra
		tasks[r] = func(f *parallel.Forker) {
			sc := scratchPool.Get().(*scratch)
			defer scratchPool.Put(sc)
			m := &mineState{
				engine:  e,
				rows:    rows,
				items:   items,
				esupBuf: sc.esup,
				varBuf:  sc.varsup,
				stats:   &ra.node.stats,
				liveOcc: topBytes,
				done:    done,
				forker:  f,
				forkOK:  forkOK,
				node:    &ra.node,
				root:    ra,
				pool:    scratchPool,
			}
			sub := collectOcc(rows, top, int32(r))
			m.liveOcc += int64(len(sub)) * int64(unsafe.Sizeof(occ{}))
			m.stats.TrackPeak(structBytes + m.liveOcc)
			m.mine([]core.Item{items[r]}, sub, structBytes)
			ra.node.results = m.results
			ra.finish(m.canceled)
		}
	}
	ss, err := parallel.RunStealing(ctx, e.Workers, tasks)
	if err != nil {
		return nil, stats, err
	}
	for _, ra := range aggs {
		results = append(results, ra.results...)
		stats.Add(ra.stats)
	}
	core.SortResults(results)
	e.Progress.EmitExec(e.Name, core.ExecStats{
		TasksSpawned: ss.Spawned,
		TasksStolen:  ss.Stolen,
		ForksInline:  ss.Inline,
	})
	e.Progress.Emit(e.Name, core.PhaseDone, core.MaxItemsetLen(results), stats)
	return results, stats, nil
}

// stealForkMinOcc is the fork cutoff of the prefix recursion: an extension
// whose occurrence list reaches this many entries is handed to the
// work-stealing pool instead of recursed inline. The cutoff reads only the
// input-determined occurrence list — never queue depth or worker count — so
// the fork tree, and with it every accumulator merge, is the same in every
// run (determinism contract of parallel.RunStealing).
const stealForkMinOcc = 256

// scratch is one worker's reusable head-table buffer pair. Buffers are
// pooled, not allocated per subtree: mine zeroes every touched entry before
// returning (the touchedRanks contract), so a reused pair is
// indistinguishable from a fresh one and the steady-state allocation count
// stays O(concurrent tasks).
type scratch struct{ esup, varsup []float64 }

// mineNode is one task's private accumulator: the results and counters of
// the subtree it mined inline, plus the nodes of the subtrees it forked
// away, in fork (DFS) order. No locks — exactly one task writes a node, and
// the scheduler's completion edges order those writes before the flatten.
type mineNode struct {
	results  []core.Result
	stats    core.MiningStats
	children []*mineNode
}

// flatten folds the node tree depth-first in fork order, reproducing the
// serial recursion's aggregate (result order is canonicalized by
// core.SortResults afterwards; counters are sums and peaks maxima, so the
// fold order cannot move a bit).
func (n *mineNode) flatten(results []core.Result, stats *core.MiningStats) []core.Result {
	results = append(results, n.results...)
	stats.Add(n.stats)
	for _, c := range n.children {
		results = c.flatten(results, stats)
	}
	return results
}

// rootAgg aggregates one first-level prefix subtree across the tasks it was
// split into. pending counts the root task plus its live forked
// descendants; the task that brings it to zero owns the completed node tree
// (the decrement publishes every task's writes), flattens it, and emits the
// subtree's PhaseSubtree event.
type rootAgg struct {
	engine   *Engine
	base     core.MiningStats // pre-fan-out totals for progress snapshots
	node     mineNode
	pending  atomic.Int64
	canceled atomic.Bool
	results  []core.Result
	stats    core.MiningStats
}

// finish retires one task of this root's subtree.
func (ra *rootAgg) finish(canceled bool) {
	if canceled {
		ra.canceled.Store(true)
	}
	if ra.pending.Add(-1) != 0 {
		return
	}
	ra.results = ra.node.flatten(nil, &ra.stats)
	if ra.canceled.Load() {
		// A canceled subtree's partials are discarded by the caller; emitting
		// a snapshot for it would report work that never merges.
		return
	}
	snap := ra.base
	snap.Add(ra.stats)
	ra.engine.Progress.Emit(ra.engine.Name, core.PhaseSubtree, 1, snap)
}

type mineState struct {
	engine  *Engine
	rows    [][]runit
	items   []core.Item // rank → item
	esupBuf []float64
	varBuf  []float64
	results []core.Result
	stats   *core.MiningStats
	liveOcc int64
	// forker schedules forked extension subtrees; forkOK gates forking
	// (false under Exec.DisableSteal). node is this task's accumulator,
	// root the first-level subtree it belongs to, pool the scratch-buffer
	// source for forked children.
	forker *parallel.Forker
	forkOK bool
	node   *mineNode
	root   *rootAgg
	pool   *sync.Pool
	// done is the run context's cancellation channel (nil when the context
	// cannot be canceled); canceled records that the recursion
	// short-circuited, invalidating this subtree's partial results.
	done     <-chan struct{}
	canceled bool
}

// extAgg is one extension's aggregates, moved out of the scratch buffers
// before recursion.
type extAgg struct {
	rank   int32
	esup   float64
	varsup float64
}

// mine recursively extends the prefix (given as ranks via prefixRanks'
// semantics embedded in occs) by every frequent item of larger rank.
// prefix holds the prefix itemset as original items (unsorted by item id;
// canonicalized on report).
func (m *mineState) mine(prefix []core.Item, occs []occ, baseBytes int64) {
	if len(occs) == 0 {
		return
	}
	// Head-table pass: aggregate every extension's expected support and
	// variance in one scan of the occurrence list. The aggregates are moved
	// out of the shared scratch buffers (and the buffers zeroed) before any
	// recursion, which reuses the same buffers.
	touched := touchedRanks(m.rows, occs, m.esupBuf, m.varBuf)
	exts := make([]extAgg, len(touched))
	for i, r := range touched {
		exts[i] = extAgg{rank: r, esup: m.esupBuf[r], varsup: m.varBuf[r]}
		m.esupBuf[r], m.varBuf[r] = 0, 0
	}

	for _, ea := range exts {
		// The per-extension context check bounds cancellation latency to
		// one head-table scan anywhere in the prefix recursion.
		if m.done != nil {
			select {
			case <-m.done:
				m.canceled = true
				return
			default:
			}
		}
		r, e, v := ea.rank, ea.esup, ea.varsup

		ext := append(prefix, m.items[r]) //nolint:gocritic // copied by NewItemset below
		itemset := core.NewItemset(ext...)
		if m.engine.Restrict != nil && !m.engine.Restrict(itemset) {
			continue
		}
		m.stats.CandidatesGenerated++
		res, ok := m.engine.Decide(itemset, e, v)
		if !ok {
			continue
		}
		m.results = append(m.results, res)

		// Build the extension's occurrence list (second scan restricted to
		// this rank), then recurse and release — or, for subtrees big enough
		// to be worth scheduling, fork onto the work-stealing pool.
		sub := collectOcc(m.rows, occs, r)
		subBytes := int64(len(sub)) * int64(unsafe.Sizeof(occ{}))
		if m.forkOK && len(sub) >= stealForkMinOcc {
			m.forkSubtree(ext, sub, subBytes, baseBytes)
			continue
		}
		m.liveOcc += subBytes
		m.stats.TrackPeak(baseBytes + m.liveOcc)
		m.mine(ext, sub, baseBytes)
		m.liveOcc -= subBytes
	}
}

// forkSubtree hands an extension's subtree to the scheduler with its own
// accumulator node and scratch pair. The child starts from the live-byte
// level the inline recursion would have at this point (parent's path plus
// the new occurrence list) and the parent tracks the fork-point peak itself,
// so the DFS-path memory model — and with it MiningStats after the
// max-merge — is bit-identical to inline recursion. ext's backing array is
// reused by the caller's extension loop, so the prefix is copied before the
// task escapes.
func (m *mineState) forkSubtree(ext []core.Item, sub []occ, subBytes, baseBytes int64) {
	prefix := make([]core.Item, len(ext))
	copy(prefix, ext)
	child := &mineNode{}
	m.node.children = append(m.node.children, child)
	m.root.pending.Add(1)
	liveAtFork := m.liveOcc + subBytes
	m.stats.TrackPeak(baseBytes + liveAtFork)
	engine, rows, items, root, pool, done := m.engine, m.rows, m.items, m.root, m.pool, m.done
	m.forker.Fork(func(f *parallel.Forker) {
		sc := pool.Get().(*scratch)
		defer pool.Put(sc)
		cm := &mineState{
			engine:  engine,
			rows:    rows,
			items:   items,
			esupBuf: sc.esup,
			varBuf:  sc.varsup,
			stats:   &child.stats,
			liveOcc: liveAtFork,
			done:    done,
			forker:  f,
			forkOK:  true,
			node:    child,
			root:    root,
			pool:    pool,
		}
		cm.mine(prefix, sub, baseBytes)
		child.results = cm.results
		root.finish(cm.canceled)
	})
}

// touchedRanks accumulates per-extension aggregates into the buffers and
// returns the sorted list of ranks that occur. Buffers must be zero on
// entry; the caller resets the touched entries afterwards.
func touchedRanks(rows [][]runit, occs []occ, esupBuf, varBuf []float64) []int32 {
	var touched []int32
	for _, o := range occs {
		row := rows[o.row]
		for i := int(o.pos); i < len(row); i++ {
			u := row[i]
			if esupBuf[u.rank] == 0 && varBuf[u.rank] == 0 {
				touched = append(touched, u.rank)
			}
			p := o.acc * u.prob
			esupBuf[u.rank] += p
			varBuf[u.rank] += p * (1 - p)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	return touched
}

// collectOcc builds the occurrence list of prefix ∪ {rank r}: for every
// parent occurrence whose row contains r at or after pos, the position after
// r with the multiplied accumulator.
func collectOcc(rows [][]runit, occs []occ, r int32) []occ {
	var out []occ
	for _, o := range occs {
		row := rows[o.row]
		// Binary search for rank r in row[pos:] (rows sorted by rank).
		lo, hi := int(o.pos), len(row)
		for lo < hi {
			mid := (lo + hi) / 2
			if row[mid].rank < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(row) && row[lo].rank == r {
			out = append(out, occ{row: o.row, pos: int32(lo + 1), acc: o.acc * row[lo].prob})
		}
	}
	return out
}

package uhmine

import (
	"context"
	"fmt"

	"umine/internal/core"
)

// Miner is the expected-support UH-Mine algorithm (paper §3.1.3). The zero
// value is ready to use.
type Miner struct {
	// Workers bounds the goroutines of the engine's first-level prefix
	// fan-out (0 or 1 = serial, the paper's platform; negative =
	// GOMAXPROCS). Results are identical for every worker count.
	Workers int
	// Progress observes the run per prefix subtree (may be nil).
	Progress core.ProgressFunc
	// Restrict confines the run to a candidate superset (phase 2 of the
	// SON partition engine); see Engine.Restrict. May be nil.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *Miner) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *Miner) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetRestrict implements core.RestrictableMiner.
func (m *Miner) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// SetProgress implements core.ObservableMiner.
func (m *Miner) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner.
func (m *Miner) Name() string { return "UH-Mine" }

// Semantics implements core.Miner.
func (m *Miner) Semantics() core.Semantics { return core.ExpectedSupport }

// Mine implements core.Miner.
func (m *Miner) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.ExpectedSupport); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	minCount := th.MinESupCount(db.N())
	engine := &Engine{
		ItemFloor: minCount,
		Workers:   m.Workers,
		Name:      m.Name(),
		Progress:  m.Progress,
		Restrict:  m.Restrict,
		Exec:      m.Exec,
		Decide: func(items core.Itemset, esup, varsup float64) (core.Result, bool) {
			if esup >= minCount-core.Eps {
				return core.Result{Itemset: items, ESup: esup, Var: varsup}, true
			}
			return core.Result{}, false
		},
	}
	results, stats, err := engine.Mine(ctx, db)
	if err != nil {
		return nil, err
	}
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.ExpectedSupport,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      stats,
	}, nil
}

package uhmine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
)

func TestPaperExample1(t *testing.T) {
	db := coretest.PaperDB()
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("got %d itemsets, want 2 (A, C)", rs.Len())
	}
	a, _ := rs.Lookup(core.NewItemset(coretest.A))
	if math.Abs(a.ESup-2.1) > 1e-12 {
		t.Fatalf("esup(A) = %v", a.ESup)
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 60; trial++ {
		db := coretest.RandomDB(rng, 10+rng.Intn(30), 6, 0.3+0.5*rng.Float64())
		minESup := 0.05 + 0.5*rng.Float64()
		rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: minESup})
		if err != nil {
			t.Fatal(err)
		}
		want := coretest.BruteForceExpected(db, minESup)
		if rs.Len() != len(want) {
			t.Fatalf("trial %d: got %d itemsets, want %d", trial, rs.Len(), len(want))
		}
		for i := range want {
			if !rs.Results[i].Itemset.Equal(want[i].Itemset) {
				t.Fatalf("itemset %d: %v vs %v", i, rs.Results[i].Itemset, want[i].Itemset)
			}
			if math.Abs(rs.Results[i].ESup-want[i].ESup) > 1e-9 {
				t.Fatalf("%v esup %v vs %v", want[i].Itemset, rs.Results[i].ESup, want[i].ESup)
			}
			if math.Abs(rs.Results[i].Var-want[i].Var) > 1e-9 {
				t.Fatalf("%v var %v vs %v", want[i].Itemset, rs.Results[i].Var, want[i].Var)
			}
		}
	}
}

func TestSparseDataDeepPatterns(t *testing.T) {
	// A chain-structured database with high probabilities produces deep
	// prefix recursion; verify against brute force.
	db := core.MustNewDatabase("chain", [][]core.Unit{
		{{Item: 0, Prob: 0.9}, {Item: 1, Prob: 0.9}, {Item: 2, Prob: 0.9}, {Item: 3, Prob: 0.9}, {Item: 4, Prob: 0.9}},
		{{Item: 0, Prob: 0.9}, {Item: 1, Prob: 0.9}, {Item: 2, Prob: 0.9}, {Item: 3, Prob: 0.9}},
		{{Item: 0, Prob: 0.9}, {Item: 1, Prob: 0.9}, {Item: 2, Prob: 0.9}},
		{{Item: 0, Prob: 0.9}, {Item: 1, Prob: 0.9}},
		{{Item: 0, Prob: 0.9}},
	})
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := coretest.BruteForceExpected(db, 0.2)
	if rs.Len() != len(want) {
		t.Fatalf("got %d, want %d", rs.Len(), len(want))
	}
	// {0 1 2 3 4} has esup 0.9^5 ≈ 0.59 < 1.0 → infrequent; {0 1 2 3} has
	// 2·0.9⁴ ≈ 1.31 > 1.0 → frequent.
	if _, ok := rs.Lookup(core.NewItemset(0, 1, 2, 3)); !ok {
		t.Fatal("{0 1 2 3} should be frequent")
	}
	if _, ok := rs.Lookup(core.NewItemset(0, 1, 2, 3, 4)); ok {
		t.Fatal("{0 1 2 3 4} should be infrequent")
	}
}

func TestEngineItemFloorFiltersBeforeDecide(t *testing.T) {
	db := coretest.PaperDB()
	calls := 0
	e := &Engine{
		ItemFloor: 2.0, // only A (2.1) and C (2.6) pass
		Decide: func(items core.Itemset, esup, varsup float64) (core.Result, bool) {
			calls++
			return core.Result{Itemset: items, ESup: esup, Var: varsup}, true
		},
	}
	results, _, _ := e.Mine(context.Background(), db)
	// Items A, C pass the floor; extensions {A C} evaluated too.
	if calls != 3 {
		t.Fatalf("decide called %d times, want 3 (A, C, AC)", calls)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
}

func TestEmptyDatabase(t *testing.T) {
	rs, err := (&Miner{}).Mine(context.Background(), core.MustNewDatabase("empty", nil), core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatal("results on empty database")
	}
}

func TestRejectsBadThresholds(t *testing.T) {
	if _, err := (&Miner{}).Mine(context.Background(), coretest.PaperDB(), core.Thresholds{MinESup: 0}); err == nil {
		t.Fatal("min_esup 0 accepted")
	}
}

func TestPeakMemoryTracked(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	db := coretest.RandomDB(rng, 100, 10, 0.5)
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.PeakTrackedBytes == 0 {
		t.Fatal("peak bytes not tracked")
	}
	if rs.Stats.DBScans != 2 {
		t.Fatalf("UH-Mine must scan the database exactly twice, got %d", rs.Stats.DBScans)
	}
}

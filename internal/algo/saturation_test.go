package algo

import (
	"context"
	"testing"

	"umine/internal/core"
	"umine/internal/dataset"
)

// TestLargeDBFreqProbSaturation reproduces the paper's §4.5 finding that
// surprised its authors: "the frequent probabilities of most probabilistic
// frequent itemsets are often 1 when the uncertain databases are large
// enough". The effect is the concentration of the Poisson-Binomial around
// its mean: an itemset whose expected support clears N·min_sup by a few
// standard deviations has tail probability ≈ 1, and on large N almost every
// frequent itemset is of that kind.
func TestLargeDBFreqProbSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("large-database test in -short mode")
	}
	small := dataset.Kosarak.GenerateUncertain(0.0001, 17) // N ≈ 99
	large := dataset.Kosarak.GenerateUncertain(0.003, 17)  // N ≈ 2970
	th := core.Thresholds{MinSup: 0.02, PFT: 0.9}

	share := func(db *core.Database) (float64, int) {
		rs, err := MustNew("DCB").Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() == 0 {
			t.Fatalf("no probabilistic frequent itemsets on %s", db.Name)
		}
		sat := 0
		for _, r := range rs.Results {
			if r.FreqProb >= 0.999 {
				sat++
			}
		}
		return float64(sat) / float64(rs.Len()), rs.Len()
	}

	smallShare, smallN := share(small)
	largeShare, largeN := share(large)
	t.Logf("saturated share: %.2f of %d (N=%d) vs %.2f of %d (N=%d)",
		smallShare, smallN, small.N(), largeShare, largeN, large.N())
	if largeShare < 0.7 {
		t.Errorf("only %.2f of frequent itemsets saturate on the large database; §4.5 expects most", largeShare)
	}
	if largeShare < smallShare-0.05 {
		t.Errorf("saturation share fell with database size: %.2f (N=%d) → %.2f (N=%d)",
			smallShare, small.N(), largeShare, large.N())
	}
}

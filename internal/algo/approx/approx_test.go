package approx

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"umine/internal/algo/exact"
	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/dataset"
	"umine/internal/prob"
)

func TestNamesAndSemantics(t *testing.T) {
	miners := []core.Miner{&PDUApriori{}, &NDUApriori{}, &NDUHMine{}}
	want := []string{"PDUApriori", "NDUApriori", "NDUH-Mine"}
	for i, m := range miners {
		if m.Name() != want[i] {
			t.Errorf("name %q, want %q", m.Name(), want[i])
		}
		if m.Semantics() != core.Probabilistic {
			t.Errorf("%s: wrong semantics", m.Name())
		}
	}
}

// TestNDUAprioriAndNDUHMineAgree: the two Normal-approximation miners use
// different search frameworks (breadth-first Apriori vs depth-first
// UH-Struct) but the identical frequentness test, so their result sets must
// match exactly — itemsets, expected supports, variances and approximate
// frequent probabilities.
func TestNDUAprioriAndNDUHMineAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 25; trial++ {
		db := coretest.RandomDB(rng, 30+rng.Intn(100), 8, 0.3+0.4*rng.Float64())
		th := core.Thresholds{MinSup: 0.1 + 0.3*rng.Float64(), PFT: 0.2 + 0.7*rng.Float64()}
		a, err := (&NDUApriori{}).Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (&NDUHMine{}).Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("trial %d: NDUApriori %d vs NDUH-Mine %d itemsets", trial, a.Len(), b.Len())
		}
		for i := range a.Results {
			ra, rb := a.Results[i], b.Results[i]
			if !ra.Itemset.Equal(rb.Itemset) {
				t.Fatalf("itemset %d: %v vs %v", i, ra.Itemset, rb.Itemset)
			}
			if math.Abs(ra.ESup-rb.ESup) > 1e-9 || math.Abs(ra.Var-rb.Var) > 1e-9 ||
				math.Abs(ra.FreqProb-rb.FreqProb) > 1e-9 {
				t.Fatalf("%v: (%v,%v,%v) vs (%v,%v,%v)", ra.Itemset,
					ra.ESup, ra.Var, ra.FreqProb, rb.ESup, rb.Var, rb.FreqProb)
			}
		}
	}
}

// TestPDUAprioriReductionEquivalence: PDUApriori must accept exactly the
// itemsets whose Poisson tail at their expected support exceeds pft — the
// λ-inversion may not change the accepted set.
func TestPDUAprioriReductionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	for trial := 0; trial < 20; trial++ {
		db := coretest.RandomDB(rng, 40, 6, 0.5)
		th := core.Thresholds{MinSup: 0.2 + 0.2*rng.Float64(), PFT: 0.3 + 0.6*rng.Float64()}
		msc := th.MinSupCount(db.N())
		rs, err := (&PDUApriori{}).Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, r := range rs.Results {
			got[r.Itemset.Key()] = true
		}
		for _, x := range coretest.AllItemsets(db.NumItems) {
			esup := db.ESup(x)
			wantIn := prob.PoissonFreqProb(esup, msc) >= th.PFT-1e-7
			// Tolerance band: skip itemsets within bisection slack of the
			// threshold.
			tail := prob.PoissonFreqProb(esup, msc)
			if math.Abs(tail-th.PFT) < 1e-6 {
				continue
			}
			if got[x.Key()] != wantIn {
				t.Fatalf("trial %d: %v esup=%v tail=%v pft=%v: in=%v want=%v",
					trial, x, esup, tail, th.PFT, got[x.Key()], wantIn)
			}
		}
	}
}

func TestPDUAprioriFreqProbIsNaN(t *testing.T) {
	db := coretest.PaperDB()
	rs, err := (&PDUApriori{}).Mine(context.Background(), db, core.Thresholds{MinSup: 0.25, PFT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("no results")
	}
	for _, r := range rs.Results {
		if !math.IsNaN(r.FreqProb) {
			t.Fatalf("%v: FreqProb = %v, want NaN (§3.3.1 limitation)", r.Itemset, r.FreqProb)
		}
	}
}

// TestApproximationQualityOnLargeDB: on a database large enough for the
// CLT, the Normal miners must agree with the exact miner almost perfectly —
// the paper's Tables 8/9 show precision/recall ≈ 1.
func TestApproximationQualityOnLargeDB(t *testing.T) {
	db := dataset.Accident.GenerateUncertain(0.004, 42) // ~1360 transactions
	th := core.Thresholds{MinSup: 0.2, PFT: 0.9}
	exactRS, err := (&exact.Miner{Method: exact.DC, Chernoff: true}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if exactRS.Len() == 0 {
		t.Fatal("exact miner found nothing; workload too hard")
	}
	for _, m := range []core.Miner{&NDUApriori{}, &NDUHMine{}, &PDUApriori{}} {
		rs, err := m.Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		p, r := precisionRecall(rs, exactRS)
		minP := 0.9
		if m.Name() == "PDUApriori" {
			minP = 0.8 // Poisson matches only the mean; the paper finds it weaker
		}
		if p < minP || r < 0.9 {
			t.Errorf("%s: precision %.3f recall %.3f below expectation", m.Name(), p, r)
		}
	}
}

func precisionRecall(approx, exactRS *core.ResultSet) (p, r float64) {
	exactSet := map[string]bool{}
	for _, res := range exactRS.Results {
		exactSet[res.Itemset.Key()] = true
	}
	inter := 0
	for _, res := range approx.Results {
		if exactSet[res.Itemset.Key()] {
			inter++
		}
	}
	if approx.Len() > 0 {
		p = float64(inter) / float64(approx.Len())
	} else {
		p = 1
	}
	if exactRS.Len() > 0 {
		r = float64(inter) / float64(exactRS.Len())
	} else {
		r = 1
	}
	return p, r
}

// TestNormalFreqProbValuesNearExact validates the reported per-itemset
// probabilities, not just set membership.
func TestNormalFreqProbValuesNearExact(t *testing.T) {
	db := dataset.Accident.GenerateUncertain(0.003, 7)
	th := core.Thresholds{MinSup: 0.25, PFT: 0.5}
	msc := th.MinSupCount(db.N())
	rs, err := (&NDUApriori{}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("no results")
	}
	checked := 0
	for _, r := range rs.Results {
		if len(r.Itemset) > 2 || checked > 20 {
			continue
		}
		exactFP := coretest.FreqProb(db, r.Itemset, msc)
		if math.Abs(exactFP-r.FreqProb) > 0.02 {
			t.Errorf("%v: normal fp %v vs exact %v", r.Itemset, r.FreqProb, exactFP)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no itemsets checked")
	}
}

func TestRejectsBadThresholds(t *testing.T) {
	db := coretest.PaperDB()
	for _, m := range []core.Miner{&PDUApriori{}, &NDUApriori{}, &NDUHMine{}} {
		for _, th := range []core.Thresholds{
			{MinSup: 0, PFT: 0.5},
			{MinSup: 0.5, PFT: 0},
			{MinSup: 0.5, PFT: 1},
			{MinSup: 2, PFT: 0.5},
		} {
			if _, err := m.Mine(context.Background(), db, th); err == nil {
				t.Errorf("%s accepted %+v", m.Name(), th)
			}
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	empty := core.MustNewDatabase("empty", nil)
	for _, m := range []core.Miner{&PDUApriori{}, &NDUApriori{}, &NDUHMine{}} {
		rs, err := m.Mine(context.Background(), empty, core.Thresholds{MinSup: 0.5, PFT: 0.9})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if rs.Len() != 0 {
			t.Errorf("%s: results on empty database", m.Name())
		}
	}
}

// TestFreqProbSaturation reproduces the §4.5 finding: on large databases,
// the frequent probabilities of probabilistic frequent itemsets are almost
// always ≈ 1 (the support distribution concentrates far above the
// threshold or far below — borderline itemsets are rare).
func TestFreqProbSaturation(t *testing.T) {
	db := dataset.Connect.GenerateUncertain(0.05, 9) // ~3380 transactions
	rs, err := (&NDUApriori{}).Mine(context.Background(), db, core.Thresholds{MinSup: 0.5, PFT: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("no results")
	}
	saturated := 0
	for _, r := range rs.Results {
		if r.FreqProb > 0.9999 {
			saturated++
		}
	}
	// The larger the database, the narrower the borderline band; at ~3.4k
	// transactions a solid majority of frequent probabilities is ≈ 1.
	if frac := float64(saturated) / float64(rs.Len()); frac < 0.75 {
		t.Errorf("only %.0f%% of frequent probabilities ≈ 1; §4.5 expects most", frac*100)
	}
}

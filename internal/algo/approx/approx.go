// Package approx implements the three approximate probabilistic frequent
// itemset miners of the paper's §3.3:
//
//   - PDUApriori [Wang et al. 2010]: approximates the Poisson-Binomial
//     support by a Poisson distribution matched on the mean. Because the
//     Poisson tail is monotone in λ, the probabilistic threshold (min_sup,
//     pft) is inverted once into an expected-support threshold λ*, and the
//     whole mining run reduces to UApriori at min_esup = λ*/N. Per-itemset
//     frequent probabilities are NOT reported (§3.3.1 notes this
//     limitation).
//   - NDUApriori [Calders, Garboni, Goethals 2010]: approximates the
//     support by a Normal distribution matched on mean AND variance
//     (Lyapunov CLT), inside the same Apriori framework; reports a
//     frequent probability for every result.
//   - NDUH-Mine — the paper's own contribution: the same Normal
//     approximation mounted on the UH-Mine hyper-structure, inheriting
//     UH-Mine's sparse-data efficiency. The variance is accumulated in the
//     same pass as the expected support, which is the whole point of the
//     paper's "bridge" between the two frequentness definitions.
//
// All three decide frequentness in O(N) per itemset — the same cost as the
// expected-support algorithms — while answering probabilistic queries.
package approx

import (
	"context"
	"fmt"
	"math"

	"umine/internal/algo/apriori"
	"umine/internal/algo/uhmine"
	"umine/internal/core"
	"umine/internal/prob"
)

// PDUApriori is the Poisson distribution-based approximate miner (§3.3.1).
type PDUApriori struct {
	// Workers bounds the goroutines of the shared counting pass and the
	// per-candidate tests (0 or 1 = serial; negative = GOMAXPROCS).
	// Results are identical for every worker count.
	Workers int
	// Progress observes the run per level (may be nil).
	Progress core.ProgressFunc
	// Restrict confines the run to a candidate superset (phase 2 of the
	// SON partition engine); see apriori.Config.Restrict. May be nil.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *PDUApriori) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *PDUApriori) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetRestrict implements core.RestrictableMiner.
func (m *PDUApriori) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// SetProgress implements core.ObservableMiner.
func (m *PDUApriori) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner.
func (m *PDUApriori) Name() string { return "PDUApriori" }

// Semantics implements core.Miner.
func (m *PDUApriori) Semantics() core.Semantics { return core.Probabilistic }

// Mine implements core.Miner. The frequent probability of results is NaN:
// the Poisson reduction decides frequentness without producing per-itemset
// probabilities.
func (m *PDUApriori) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.Probabilistic); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	msc := th.MinSupCount(db.N())
	lambda := prob.InversePoissonLambda(msc, th.PFT)
	cfg := apriori.Config{
		ESupPrune: lambda,
		Workers:   m.Workers,
		Name:      m.Name(),
		Progress:  m.Progress,
		Restrict:  m.Restrict,
		Exec:      m.Exec,
		// The λ-threshold test is pure, so it may run on the pool.
		ParallelDecide: true,
		Decide: func(c *apriori.Candidate) (core.Result, bool) {
			if c.ESup >= lambda-core.Eps {
				return core.Result{Itemset: c.Items, ESup: c.ESup, Var: c.Var, FreqProb: math.NaN()}, true
			}
			return core.Result{}, false
		},
	}
	results, stats, err := apriori.Run(ctx, db, cfg)
	if err != nil {
		return nil, err
	}
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.Probabilistic,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      stats,
	}, nil
}

// NDUApriori is the Normal distribution-based approximate miner in the
// Apriori framework (§3.3.2).
type NDUApriori struct {
	// Workers bounds the goroutines of the shared counting pass and the
	// per-candidate Normal-tail tests (0 or 1 = serial; negative =
	// GOMAXPROCS). Results are identical for every worker count.
	Workers int
	// Progress observes the run per level (may be nil).
	Progress core.ProgressFunc
	// Restrict confines the run to a candidate superset (phase 2 of the
	// SON partition engine); see apriori.Config.Restrict. May be nil.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *NDUApriori) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *NDUApriori) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetRestrict implements core.RestrictableMiner.
func (m *NDUApriori) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// SetProgress implements core.ObservableMiner.
func (m *NDUApriori) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner.
func (m *NDUApriori) Name() string { return "NDUApriori" }

// Semantics implements core.Miner.
func (m *NDUApriori) Semantics() core.Semantics { return core.Probabilistic }

// Mine implements core.Miner.
func (m *NDUApriori) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.Probabilistic); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	msc := th.MinSupCount(db.N())
	cfg := apriori.Config{
		Workers:  m.Workers,
		Name:     m.Name(),
		Progress: m.Progress,
		Restrict: m.Restrict,
		Exec:     m.Exec,
		// The Normal-tail test is pure, so it may run on the pool.
		ParallelDecide: true,
		Decide: func(c *apriori.Candidate) (core.Result, bool) {
			fp := prob.NormalFreqProb(c.ESup, c.Var, msc)
			if fp > th.PFT+core.Eps {
				return core.Result{Itemset: c.Items, ESup: c.ESup, Var: c.Var, FreqProb: fp}, true
			}
			return core.Result{}, false
		},
	}
	results, stats, err := apriori.Run(ctx, db, cfg)
	if err != nil {
		return nil, err
	}
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.Probabilistic,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      stats,
	}, nil
}

// NDUHMine is the paper's new algorithm (§3.3.3): the Normal approximation
// mounted on the UH-Mine depth-first hyper-structure.
type NDUHMine struct {
	// Workers bounds the goroutines of the engine's first-level prefix
	// fan-out (0 or 1 = serial; negative = GOMAXPROCS). Results are
	// identical for every worker count.
	Workers int
	// Progress observes the run per prefix subtree (may be nil).
	Progress core.ProgressFunc
	// Restrict confines the run to a candidate superset (phase 2 of the
	// SON partition engine); see uhmine.Engine.Restrict. May be nil.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *NDUHMine) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *NDUHMine) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetRestrict implements core.RestrictableMiner.
func (m *NDUHMine) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// SetProgress implements core.ObservableMiner.
func (m *NDUHMine) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// Name implements core.Miner.
func (m *NDUHMine) Name() string { return "NDUH-Mine" }

// Semantics implements core.Miner.
func (m *NDUHMine) Semantics() core.Semantics { return core.Probabilistic }

// Mine implements core.Miner.
func (m *NDUHMine) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.Probabilistic); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	msc := th.MinSupCount(db.N())
	engine := &uhmine.Engine{
		Workers:  m.Workers,
		Name:     m.Name(),
		Progress: m.Progress,
		Restrict: m.Restrict,
		Exec:     m.Exec,
		// No esup floor: the Normal tail decides directly. (A frequent
		// itemset can have esup slightly below msc when its variance is
		// high, so an msc floor would lose results.)
		Decide: func(items core.Itemset, esup, varsup float64) (core.Result, bool) {
			fp := prob.NormalFreqProb(esup, varsup, msc)
			if fp > th.PFT+core.Eps {
				return core.Result{Itemset: items, ESup: esup, Var: varsup, FreqProb: fp}, true
			}
			return core.Result{}, false
		},
	}
	results, stats, err := engine.Mine(ctx, db)
	if err != nil {
		return nil, err
	}
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.Probabilistic,
		Thresholds: th,
		N:          db.N(),
		Results:    results,
		Stats:      stats,
	}, nil
}

package algo

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"umine/internal/benchenv"
	"umine/internal/core"
	"umine/internal/dataset"
	"umine/internal/kernel"
	"umine/internal/parallel"
)

// The hot-loop benchmark behind `make bench-kernels` and BENCH_kernels.json:
//
//   - the intersection kernels (Pair/KWay) against their scalar references
//     across postings density bands — the dense band is where the 4-wide
//     skip-ahead and bounds-check elimination must show up;
//   - the DP verification kernel (FreqTailDP) against its reference on the
//     borderline and wide candidate shapes;
//   - cold mines with the work-stealing scheduler on vs off (UH-Mine, the
//     subtree-recursion family the scheduler exists for);
//   - the gated end-to-end number: the accident @ 0.01 DPNB cold mine at
//     GOMAXPROCS ≥ 4, which must beat the committed BENCH_partition.json
//     unpartitioned baseline (BENCH_PARTITION_BASELINE points at it).
//
// TestWriteKernelsBench (gated by BENCH_KERNELS_OUT) writes the JSON
// document; the *_p50_ms fields are what scripts/benchgate compares against
// the committed baseline on every bench-gate run.

// kernelsBandReport is one postings-density row of BENCH_kernels.json.
type kernelsBandReport struct {
	Band    string  `json:"band"`
	Density float64 `json:"density"`
	// DensityB is the second list's density when the band is skewed (0 means
	// both lists share Density).
	DensityB float64 `json:"density_b,omitempty"`
	Span     int     `json:"span"`
	Len      int     `json:"postings_len"`
	// Pair*: the two-list merge (the level-2 fast path).
	PairKernelNsOp int64   `json:"pair_kernel_ns_op"`
	PairScalarNsOp int64   `json:"pair_scalar_ns_op"`
	PairSpeedup    float64 `json:"pair_speedup"`
	// KWay*: the generic driver on four lists.
	KWayKernelNsOp int64   `json:"kway_kernel_ns_op"`
	KWayScalarNsOp int64   `json:"kway_scalar_ns_op"`
	KWaySpeedup    float64 `json:"kway_speedup"`
}

// kernelsTailReport is one DP-verification row of BENCH_kernels.json.
type kernelsTailReport struct {
	Shape      string  `json:"shape"`
	N          int     `json:"n"`
	MinCount   int     `json:"min_count"`
	KernelNsOp int64   `json:"kernel_ns_op"`
	ScalarNsOp int64   `json:"scalar_ns_op"`
	Speedup    float64 `json:"speedup"`
}

// kernelsBenchReport is the BENCH_kernels.json document.
type kernelsBenchReport struct {
	Benchmark string              `json:"benchmark"`
	Bands     []kernelsBandReport `json:"bands"`
	Tail      []kernelsTailReport `json:"tail"`

	// The steal pair: the same UH-Mine cold mine with the work-stealing
	// scheduler on vs off (results are bit-identical; only wall-clock moves).
	StealProfile      string  `json:"steal_profile"`
	StealScale        float64 `json:"steal_scale"`
	StealMinESup      float64 `json:"steal_min_esup"`
	ColdRuns          int     `json:"cold_runs"`
	StealOnColdP50MS  float64 `json:"steal_on_cold_p50_ms"`
	StealOffColdP50MS float64 `json:"steal_off_cold_p50_ms"`

	// The gated end-to-end number: accident @ 0.01 DPNB (verification-
	// dominated) with every kernel enabled, against the committed
	// unpartitioned BENCH_partition.json baseline.
	DPNBProfile     string       `json:"dpnb_profile"`
	DPNBScale       float64      `json:"dpnb_scale"`
	DPNBMinSup      float64      `json:"dpnb_min_sup"`
	DPNBPFT         float64      `json:"dpnb_pft"`
	DPNBColdP50MS   float64      `json:"dpnb_cold_p50_ms"`
	PartitionP50MS  float64      `json:"partition_baseline_cold_p50_ms,omitempty"`
	BenchGOMAXPROCS int          `json:"bench_gomaxprocs"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Env             benchenv.Env `json:"env"`
	Timestamp       string       `json:"timestamp"`
}

// benchPostings builds one postings list: ascending TIDs where each of span
// transactions is included with the band's density, quantized probabilities.
func benchPostings(rng *rand.Rand, span int, density float64) kernel.List {
	var l kernel.List
	for t := 0; t < span; t++ {
		if rng.Float64() < density {
			l.TIDs = append(l.TIDs, uint32(t))
			l.Probs = append(l.Probs, float64(1+rng.Intn(64))/64)
		}
	}
	return l
}

func benchTailProbs(rng *rand.Rand, n int) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = float64(1+rng.Intn(64)) / 64
	}
	return ps
}

// coldMineP50 runs `runs` uncached mines and returns the p50 wall-clock in
// ms, checking every run returns the same number of itemsets.
func coldMineP50(t *testing.T, name string, opts core.Options, db *core.Database, th core.Thresholds, runs int) float64 {
	t.Helper()
	var times []float64
	count := -1
	for i := 0; i < runs; i++ {
		m := MustNewWith(name, opts)
		start := time.Now()
		rs, err := m.Mine(context.Background(), db, th)
		if err != nil {
			t.Fatalf("%s cold mine: %v", name, err)
		}
		times = append(times, float64(time.Since(start).Nanoseconds())/1e6)
		if count == -1 {
			count = rs.Len()
		} else if rs.Len() != count {
			t.Fatalf("%s cold mine run %d: %d itemsets, previous runs found %d", name, i, rs.Len(), count)
		}
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// TestWriteKernelsBench runs the kernel and scheduler benchmarks and writes
// BENCH_kernels.json to the path in BENCH_KERNELS_OUT (skipped when unset —
// `make bench-kernels` sets it). It enforces the acceptance margins: the
// optimized kernels beat their scalar references on the dense band and both
// DP shapes, and the DPNB cold mine beats the committed partition baseline.
func TestWriteKernelsBench(t *testing.T) {
	out := os.Getenv("BENCH_KERNELS_OUT")
	if out == "" {
		t.Skip("BENCH_KERNELS_OUT not set; run via `make bench-kernels`")
	}
	report := &kernelsBenchReport{
		Benchmark:  "hot-loop-kernels",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        benchenv.Capture(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}

	// bestOf3 times each benchmark in three interleaved rounds and keeps the
	// minimum ns/op. The enforced margins (dense band, DP tail) are smaller
	// than the drift between single-shot testing.Benchmark calls a minute
	// apart on a busy box; alternating rounds put kernel and scalar under the
	// same conditions, and the minimum is the least-disturbed run.
	bestOf3 := func(fns ...func(*testing.B)) []int64 {
		mins := make([]int64, len(fns))
		for round := 0; round < 3; round++ {
			for i, fn := range fns {
				if ns := testing.Benchmark(fn).NsPerOp(); round == 0 || ns < mins[i] {
					mins[i] = ns
				}
			}
		}
		return mins
	}

	// Intersection kernels per density band. Three synthetic equal-density
	// bands plus a skewed one probe the dispatcher's two strategies in
	// isolation; the enforced "dense" band below measures the mix a dense
	// database's level-2 join actually runs. The chunk size is whatever the
	// adaptive policy picks for the span, as in a real mine.
	rng := rand.New(rand.NewSource(31))
	const span = 20000
	bands := []struct {
		name     string
		density  float64
		densityB float64 // 0 = same as density
	}{{"sparse", 0.02, 0}, {"medium", 0.2, 0}, {"balanced-dense", 0.7, 0}, {"skewed", 0.7, 0.02}}
	for _, band := range bands {
		db := band.densityB
		if db == 0 {
			db = band.density
		}
		a := benchPostings(rng, span, band.density)
		b := benchPostings(rng, span, db)
		four := []kernel.List{a, b, benchPostings(rng, span, band.density), benchPostings(rng, span, db)}
		chunk := parallel.ChunkSizeForSpan(span, int(float64(span)*(band.density+db))*2)
		row := kernelsBandReport{Band: band.name, Density: band.density, DensityB: band.densityB, Span: span, Len: len(a.TIDs)}
		row.PairKernelNsOp = testing.Benchmark(func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				kernel.Pair(a, b, chunk, false)
			}
		}).NsPerOp()
		row.PairScalarNsOp = testing.Benchmark(func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				kernel.PairScalar(a, b, chunk, false)
			}
		}).NsPerOp()
		row.KWayKernelNsOp = testing.Benchmark(func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				kernel.KWay(four, chunk, false)
			}
		}).NsPerOp()
		row.KWayScalarNsOp = testing.Benchmark(func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				kernel.KWayScalar(four, chunk, false)
			}
		}).NsPerOp()
		row.PairSpeedup = float64(row.PairScalarNsOp) / float64(row.PairKernelNsOp)
		row.KWaySpeedup = float64(row.KWayScalarNsOp) / float64(row.KWayKernelNsOp)
		t.Logf("band %s (len %d, chunk %d): pair %d vs %d ns/op (%.2fx), kway %d vs %d ns/op (%.2fx)",
			band.name, row.Len, chunk, row.PairKernelNsOp, row.PairScalarNsOp, row.PairSpeedup,
			row.KWayKernelNsOp, row.KWayScalarNsOp, row.KWaySpeedup)
		report.Bands = append(report.Bands, row)
	}
	// The dense band: the multiply-accumulate work a dense database's
	// level-2 join actually issues. accident is the dense profile — at the
	// benchmark threshold its frequent items' postings cover 20–98% of the
	// transactions, so the join mixes balanced merges with skewed ones,
	// exactly the mix the dispatcher exists for. One op sweeps every pair
	// (and each consecutive quadruple) of those items' postings through the
	// kernel, with the adaptive chunk size the real mine would use.
	{
		ddb := dataset.Accident.GenerateUncertain(0.01, 3)
		vert := ddb.Vertical()
		minLen := ddb.N() / 5 // the MinESup 0.2 support floor, as a length cut
		var items []core.Item
		for i := 0; i < vert.NumItems(); i++ {
			if vert.PostingsLen(core.Item(i)) >= minLen {
				items = append(items, core.Item(i))
			}
		}
		sort.Slice(items, func(i, j int) bool {
			li, lj := vert.PostingsLen(items[i]), vert.PostingsLen(items[j])
			if li != lj {
				return li > lj
			}
			return items[i] < items[j]
		})
		if len(items) > 64 {
			items = items[:64]
		}
		lists := make([]kernel.List, len(items))
		totalLen := 0
		for i, it := range items {
			tids, probs := vert.Postings(it)
			lists[i] = kernel.List{TIDs: tids, Probs: probs}
			totalLen += len(tids)
		}
		chunk := parallel.ChunkSizeForSpan(ddb.N(), ddb.NumUnits())
		row := kernelsBandReport{
			Band:    "dense",
			Density: float64(totalLen) / float64(len(lists)*ddb.N()),
			Span:    ddb.N(),
			Len:     len(lists[0].TIDs),
		}
		pairKernelFn := func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				for x := 0; x < len(lists); x++ {
					for y := x + 1; y < len(lists); y++ {
						kernel.Pair(lists[x], lists[y], chunk, false)
					}
				}
			}
		}
		pairScalarFn := func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				for x := 0; x < len(lists); x++ {
					for y := x + 1; y < len(lists); y++ {
						kernel.PairScalar(lists[x], lists[y], chunk, false)
					}
				}
			}
		}
		kwayKernelFn := func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				for x := 0; x+4 <= len(lists); x += 4 {
					kernel.KWay(lists[x:x+4], chunk, false)
				}
			}
		}
		kwayScalarFn := func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				for x := 0; x+4 <= len(lists); x += 4 {
					kernel.KWayScalar(lists[x:x+4], chunk, false)
				}
			}
		}
		mins := bestOf3(pairKernelFn, pairScalarFn, kwayKernelFn, kwayScalarFn)
		row.PairKernelNsOp, row.PairScalarNsOp = mins[0], mins[1]
		row.KWayKernelNsOp, row.KWayScalarNsOp = mins[2], mins[3]
		row.PairSpeedup = float64(row.PairScalarNsOp) / float64(row.PairKernelNsOp)
		row.KWaySpeedup = float64(row.KWayScalarNsOp) / float64(row.KWayKernelNsOp)
		t.Logf("band dense (N=%d, %d lists, longest %d, chunk %d): pair %d vs %d ns/op (%.2fx), kway %d vs %d ns/op (%.2fx)",
			ddb.N(), len(lists), row.Len, chunk, row.PairKernelNsOp, row.PairScalarNsOp, row.PairSpeedup,
			row.KWayKernelNsOp, row.KWayScalarNsOp, row.KWaySpeedup)
		if row.PairSpeedup <= 1 {
			t.Errorf("dense band: pair kernel (%d ns/op) does not beat scalar (%d ns/op)", row.PairKernelNsOp, row.PairScalarNsOp)
		}
		report.Bands = append(report.Bands, row)
	}

	// DP verification kernel: the borderline shape (support barely above the
	// min count — what count pruning lets through) and the wide shape (the
	// whole database matches, worst case for the skipped triangles).
	for _, shape := range []struct {
		name        string
		n, minCount int
	}{{"borderline", 800, 681}, {"wide", 3400, 681}} {
		ps := benchTailProbs(rng, shape.n)
		row := kernelsTailReport{Shape: shape.name, N: shape.n, MinCount: shape.minCount}
		mins := bestOf3(func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				kernel.FreqTailDP(ps, shape.minCount)
			}
		}, func(b2 *testing.B) {
			for i := 0; i < b2.N; i++ {
				kernel.FreqTailDPScalar(ps, shape.minCount)
			}
		})
		row.KernelNsOp, row.ScalarNsOp = mins[0], mins[1]
		row.Speedup = float64(row.ScalarNsOp) / float64(row.KernelNsOp)
		t.Logf("tail %s: %d vs %d ns/op (%.2fx)", shape.name, row.KernelNsOp, row.ScalarNsOp, row.Speedup)
		if row.Speedup <= 1 {
			t.Errorf("tail %s: DP kernel (%d ns/op) does not beat scalar (%d ns/op)", shape.name, row.KernelNsOp, row.ScalarNsOp)
		}
		report.Tail = append(report.Tail, row)
	}

	// Cold mines below run at GOMAXPROCS ≥ 4 — the acceptance criterion's
	// regime, where the stealing pool actually has somewhere to put work.
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		procs = 4
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	report.BenchGOMAXPROCS = procs

	runs := 5
	if s := os.Getenv("BENCH_KERNELS_COLD_RUNS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			runs = v
		}
	}
	report.ColdRuns = runs

	// Steal on vs off: UH-Mine, whose below-first-level subtree recursion is
	// what the scheduler parallelizes.
	report.StealProfile, report.StealScale, report.StealMinESup = "accident", 0.01, 0.2
	stealDB := dataset.Accident.GenerateUncertain(report.StealScale, 1)
	stealTh := core.Thresholds{MinESup: report.StealMinESup}
	report.StealOnColdP50MS = coldMineP50(t, "UH-Mine", core.Options{Workers: -1}, stealDB, stealTh, runs)
	report.StealOffColdP50MS = coldMineP50(t, "UH-Mine",
		core.Options{Workers: -1, Exec: core.ExecTuning{DisableSteal: true}}, stealDB, stealTh, runs)
	t.Logf("UH-Mine cold p50: steal on %.2fms, steal off %.2fms", report.StealOnColdP50MS, report.StealOffColdP50MS)

	// The gated end-to-end number, same workload as BENCH_partition.json's
	// unpartitioned (k=1) level.
	report.DPNBProfile, report.DPNBScale, report.DPNBMinSup, report.DPNBPFT = "accident", 0.01, 0.2, 0.7
	dpnbDB := dataset.Accident.GenerateUncertain(report.DPNBScale, 1)
	report.DPNBColdP50MS = coldMineP50(t, "DPNB", core.Options{Workers: -1}, dpnbDB,
		core.Thresholds{MinSup: report.DPNBMinSup, PFT: report.DPNBPFT}, runs)
	t.Logf("DPNB cold p50: %.2fms", report.DPNBColdP50MS)

	if basePath := os.Getenv("BENCH_PARTITION_BASELINE"); basePath != "" {
		baseline, err := partitionUnpartitionedP50(basePath)
		if err != nil {
			t.Fatalf("reading partition baseline: %v", err)
		}
		report.PartitionP50MS = baseline
		if report.DPNBColdP50MS >= baseline {
			t.Errorf("DPNB cold-mine p50 %.2fms does not beat the committed partition baseline %.2fms",
				report.DPNBColdP50MS, baseline)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// partitionUnpartitionedP50 reads the committed BENCH_partition.json and
// returns its unpartitioned (k=1) cold-mine p50 — the baseline the DPNB
// number is gated against.
func partitionUnpartitionedP50(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		Levels []struct {
			K         int     `json:"k"`
			ColdP50MS float64 `json:"cold_p50_ms"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, lvl := range doc.Levels {
		if lvl.K == 1 {
			return lvl.ColdP50MS, nil
		}
	}
	return 0, fmt.Errorf("%s: no k=1 level", path)
}

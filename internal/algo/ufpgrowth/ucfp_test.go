package ufpgrowth

import (
	"context"
	"fmt"
	"math"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
	"umine/internal/dataset"
)

func TestUCFPNameAndDefault(t *testing.T) {
	if got := (&Miner{}).Name(); got != "UFP-growth" {
		t.Errorf("zero value name %q", got)
	}
	if got := (&Miner{Rounding: 2}).Name(); got != "UCFP-tree(2)" {
		t.Errorf("rounded name %q", got)
	}
}

// TestUCFPHighPrecisionMatchesExact: with more rounding digits than the
// data's probability precision, the UCFP-tree is the UFP-tree.
func TestUCFPHighPrecisionMatchesExact(t *testing.T) {
	db := coretest.PaperDB() // probabilities have one decimal digit
	th := core.Thresholds{MinESup: 0.2}
	exact, err := (&Miner{}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	rounded, err := (&Miner{Rounding: 6}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Len() != rounded.Len() {
		t.Fatalf("result counts differ: %d vs %d", exact.Len(), rounded.Len())
	}
	for i := range exact.Results {
		a, b := exact.Results[i], rounded.Results[i]
		if !a.Itemset.Equal(b.Itemset) || math.Abs(a.ESup-b.ESup) > 1e-9 {
			t.Fatalf("result %d differs: %v (%v) vs %v (%v)", i, a.Itemset, a.ESup, b.Itemset, b.ESup)
		}
	}
}

// TestUCFPBoundedESupError: rounding to k digits perturbs each occurrence
// probability by at most 0.5·10⁻ᵏ, so per-item expected supports differ by
// at most N·0.5·10⁻ᵏ (and in practice far less).
func TestUCFPBoundedESupError(t *testing.T) {
	db := dataset.Accident.GenerateUncertain(0.001, 13)
	th := core.Thresholds{MinESup: 0.3}
	exact, err := (&Miner{}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	for _, digits := range []int{1, 2} {
		rounded, err := (&Miner{Rounding: digits}).Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(db.N()) * 0.5 * math.Pow(10, -float64(digits))
		for _, r := range exact.Results {
			got, ok := rounded.Lookup(r.Itemset)
			if !ok {
				// Borderline itemsets may fall below the threshold under
				// rounding; they must have been within the bound of it.
				if r.ESup-th.MinESupCount(db.N()) > bound*float64(len(r.Itemset)) {
					t.Errorf("digits=%d: %v (esup %v) lost though far above the threshold", digits, r.Itemset, r.ESup)
				}
				continue
			}
			if math.Abs(got.ESup-r.ESup) > bound*float64(len(r.Itemset))+core.Eps {
				t.Errorf("digits=%d: %v esup %v vs exact %v exceeds bound %v",
					digits, r.Itemset, got.ESup, r.ESup, bound*float64(len(r.Itemset)))
			}
		}
	}
}

// TestUCFPIncreasesSharing: clustering probabilities must never enlarge the
// tree, and on continuous-probability data it shrinks it substantially.
func TestUCFPIncreasesSharing(t *testing.T) {
	db := dataset.Accident.GenerateUncertain(0.001, 13)
	th := core.Thresholds{MinESup: 0.3}
	exact, err := (&Miner{}).Mine(context.Background(), db, th)
	if err != nil {
		t.Fatal(err)
	}
	prev := exact.Stats.PeakTrackedBytes
	for _, digits := range []int{3, 1} {
		rounded, err := (&Miner{Rounding: digits}).Mine(context.Background(), db, th)
		if err != nil {
			t.Fatal(err)
		}
		if rounded.Stats.PeakTrackedBytes > prev {
			t.Errorf("digits=%d: tracked bytes %d exceed coarser/exact %d",
				digits, rounded.Stats.PeakTrackedBytes, prev)
		}
		prev = rounded.Stats.PeakTrackedBytes
	}
	one, _ := (&Miner{Rounding: 1}).Mine(context.Background(), db, th)
	if one.Stats.PeakTrackedBytes >= exact.Stats.PeakTrackedBytes {
		t.Errorf("1-digit clustering did not shrink the tree: %d vs %d",
			one.Stats.PeakTrackedBytes, exact.Stats.PeakTrackedBytes)
	}
}

// BenchmarkAblationUCFP reproduces the paper's §4.1 decision to skip the
// UCFP-tree: it measures UFP-growth against its clustered variants on a
// continuous-probability workload. The compression shrinks memory but the
// mining time stays in the same band — "no obvious optimization ... in
// terms of the running time".
func BenchmarkAblationUCFP(b *testing.B) {
	db := dataset.Accident.GenerateUncertain(0.002, 17)
	th := core.Thresholds{MinESup: 0.2}
	for _, digits := range []int{0, 2, 1} {
		m := &Miner{Rounding: digits}
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var peak int64
			for i := 0; i < b.N; i++ {
				rs, err := m.Mine(context.Background(), db, th)
				if err != nil {
					b.Fatal(err)
				}
				peak = rs.Stats.PeakTrackedBytes
			}
			b.ReportMetric(float64(peak)/(1<<20), "tree-MB")
		})
	}
}

func ExampleMiner_ucfp() {
	db := coretest.PaperDB()
	rs, _ := (&Miner{Rounding: 1}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.5})
	for _, r := range rs.Results {
		fmt.Printf("%v %.1f\n", r.Itemset, r.ESup)
	}
	// Output:
	// {0} 2.1
	// {2} 2.6
}

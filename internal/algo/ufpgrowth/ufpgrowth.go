// Package ufpgrowth implements UFP-growth [Leung, Mateo, Brajczuk 2008],
// the tree-based divide-and-conquer miner for expected support-based
// frequent itemsets (paper §3.1.2).
//
// The UFP-tree generalizes the FP-tree to uncertain data, with the crucial
// restriction the paper dwells on: two occurrences share a node only when
// both the item AND its existential probability are equal. Continuous
// probabilities therefore produce almost no sharing — the tree degenerates
// toward a trie of distinct paths, and mining must recursively materialize
// conditional subtrees with little compression. This is precisely why the
// paper finds UFP-growth slowest and most memory-hungry among the three
// expected-support algorithms, and this implementation preserves that
// honest cost structure (it builds real conditional UFP-trees rather than
// shortcutting to pattern-base lists).
package ufpgrowth

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"unsafe"

	"umine/internal/core"
	"umine/internal/parallel"
)

// Miner is the UFP-growth algorithm. The zero value is ready to use.
//
// Setting Rounding > 0 turns the miner into the UCFP-tree variant the
// paper's §4.1 mentions (and declines to benchmark, reporting "no obvious
// optimization"): probabilities are clustered by rounding to the given
// number of decimal digits before tree construction, so occurrences whose
// probabilities fall in the same cluster share a node. Sharing rises and
// memory falls, at the price of approximate expected supports (error per
// occurrence ≤ 0.5·10⁻ᵏ). BenchmarkAblationUCFP quantifies the trade-off —
// reproducing the paper's claim that the compression does not change the
// algorithm's standing.
type Miner struct {
	// Rounding is the number of decimal digits probabilities are rounded
	// to before insertion; 0 (the default) keeps exact probabilities — the
	// plain UFP-tree.
	Rounding int
	// Workers bounds the goroutines of the conditional-tree walk: every
	// non-empty top-level header item roots an independent walk scheduled
	// as one work-stealing task, and large conditional subtrees fork back
	// onto the pool mid-recursion (0 or 1 = serial, the paper's platform;
	// negative = GOMAXPROCS). Results are identical for every worker
	// count: the global tree is read-only during the walk, every
	// conditional tree is built and owned by exactly one task, and the
	// fork cutoff reads only the conditional tree's size.
	Workers int
	// Progress observes the run per top-level conditional subtree (may be
	// nil).
	Progress core.ProgressFunc
	// Restrict, when non-nil, confines the conditional-tree walk to a
	// pre-computed candidate superset: extensions for which it returns
	// false are neither reported nor descended into, so the recursion
	// materializes conditional trees only under allowed prefixes. The
	// global UFP-tree and every header-chain aggregation are built exactly
	// as an unrestricted run builds them, so when the allowed set is a
	// superset of the unrestricted result the restricted run is
	// bit-identical (the SON partition engine's phase-2 hook,
	// umine/internal/partition). May receive transient itemsets it must
	// not retain.
	Restrict func(core.Itemset) bool
	// Exec selects between equivalent execution strategies (results are
	// bit-identical either way); see core.ExecTuning.
	Exec core.ExecTuning
}

// SetWorkers implements core.ParallelMiner.
func (m *Miner) SetWorkers(workers int) { m.Workers = workers }

// SetExecTuning implements core.ExecTunableMiner.
func (m *Miner) SetExecTuning(t core.ExecTuning) { m.Exec = t }

// SetProgress implements core.ObservableMiner.
func (m *Miner) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// SetRestrict implements core.RestrictableMiner.
func (m *Miner) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// Name implements core.Miner.
func (m *Miner) Name() string {
	if m.Rounding > 0 {
		return fmt.Sprintf("UCFP-tree(%d)", m.Rounding)
	}
	return "UFP-growth"
}

// Semantics implements core.Miner.
func (m *Miner) Semantics() core.Semantics { return core.ExpectedSupport }

// node is one UFP-tree node: an (item-rank, probability) pair with the
// number of transactions flowing through it. In conditional trees the count
// becomes fractional (weight = count × accumulated probability), and a
// parallel weightSq accumulator carries Σ count·p² so support variances are
// available at no extra asymptotic cost.
type node struct {
	rank     int32
	prob     float64
	weight   float64 // Σ over represented transactions of Π probs of the prefix below the conditioning point
	weightSq float64 // Σ of the squared products (for Var = Σp − Σp²)
	parent   *node
	children map[childKey]*node
	next     *node // header chain
}

type childKey struct {
	rank     int32
	probBits uint64
}

// tree is a UFP-tree with its header table.
type tree struct {
	root    *node
	headers []*node // per rank: chain of nodes via next
	nodes   int64   // node count, for memory tracking
}

func newTree(numRanks int) *tree {
	return &tree{
		root:    &node{rank: -1, children: map[childKey]*node{}},
		headers: make([]*node, numRanks),
	}
}

// wunit is one unit of a weighted (conditional) transaction.
type wunit struct {
	rank int32
	prob float64
}

// insert adds a weighted transaction (units in rank order) to the tree.
func (t *tree) insert(units []wunit, weight, weightSq float64) {
	n := t.root
	for _, u := range units {
		key := childKey{rank: u.rank, probBits: math.Float64bits(u.prob)}
		child := n.children[key]
		if child == nil {
			child = &node{
				rank:     u.rank,
				prob:     u.prob,
				parent:   n,
				children: map[childKey]*node{},
				next:     t.headers[u.rank],
			}
			t.headers[u.rank] = child
			n.children[key] = child
			t.nodes++
		}
		child.weight += weight
		child.weightSq += weightSq
		n = child
	}
}

// bytes estimates the tree's heap footprint.
func (t *tree) bytes() int64 {
	const perNode = int64(unsafe.Sizeof(node{})) + 48 // node + map overhead estimate
	return t.nodes * perNode
}

// Mine implements core.Miner. Cancellation lands between header items of
// the conditional-tree walk — before each extension's chain aggregation and
// conditional-tree construction — at every recursion depth.
func (m *Miner) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.ExpectedSupport); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	var stats core.MiningStats
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	minCount := th.MinESupCount(db.N())

	// Pass 1: frequent items, ordered by descending expected support
	// (§3.1.2's header list).
	esup, _ := db.ItemESupVar()
	stats.DBScans++
	order, rank := core.FrequencyOrder(esup, minCount)
	if len(order) == 0 {
		// Still a completed run: the observer contract promises a final
		// PhaseDone event even when nothing is frequent.
		m.Progress.Emit(m.Name(), core.PhaseDone, 0, stats)
		return m.resultSet(th, db.N(), nil, stats), nil
	}

	// Pass 2: build the global UFP-tree from projected transactions.
	stats.DBScans++
	t := newTree(len(order))
	round := func(p float64) float64 { return p }
	if m.Rounding > 0 {
		scale := math.Pow(10, float64(m.Rounding))
		round = func(p float64) float64 {
			r := math.Round(p*scale) / scale
			if r <= 0 {
				r = 1 / scale // keep clustered occurrences alive
			}
			if r > 1 {
				r = 1
			}
			return r
		}
	}
	var buf []wunit
	for j, n := 0, db.N(); j < n; j++ {
		tx := db.Tx(j)
		buf = buf[:0]
		for i, it := range tx.Items {
			if r := rank[it]; r >= 0 {
				buf = append(buf, wunit{rank: int32(r), prob: round(tx.Probs[i])})
			}
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].rank < buf[j].rank })
		t.insert(buf, 1, 1)
	}
	liveBytes := t.bytes()
	stats.TrackPeak(liveBytes)

	// Top-level fan-out: every non-empty header item roots an independent
	// conditional-tree walk (the global tree is read-only from here on),
	// scheduled in the serial walk's bottom-up order as one work-stealing
	// task each; inside a walk, large conditional subtrees fork back onto
	// the pool. Each task mines into its own accumulator node; nodes merge
	// in fork order and roots in walk order below, so the result list —
	// and, after the canonical sort, the ResultSet — is identical for
	// every worker count and steal setting.
	statsBase := stats
	done := ctx.Done()
	forkOK := !m.Exec.DisableSteal
	name := m.Name()
	var rootRanks []int32
	for r := len(t.headers) - 1; r >= 0; r-- {
		if t.headers[r] != nil {
			rootRanks = append(rootRanks, int32(r))
		}
	}
	aggs := make([]*rootAgg, len(rootRanks))
	tasks := make([]parallel.Task, len(rootRanks))
	for i, r := range rootRanks {
		r := r
		ra := &rootAgg{name: name, progress: m.Progress, base: statsBase}
		ra.pending.Store(1)
		aggs[i] = ra
		tasks[i] = func(f *parallel.Forker) {
			st := &mineState{
				items:    order,
				minCount: minCount,
				stats:    &ra.node.stats,
				done:     done,
				name:     name,
				progress: m.Progress,
				restrict: m.Restrict,
				forker:   f,
				forkOK:   forkOK,
				node:     &ra.node,
				root:     ra,
			}
			st.mineOne(t, nil, r, liveBytes)
			ra.node.results = st.results
			ra.finish(st.canceled)
		}
	}
	ss, err := parallel.RunStealing(ctx, m.Workers, tasks)
	if err != nil {
		return nil, err
	}
	var results []core.Result
	for _, ra := range aggs {
		results = append(results, ra.results...)
		stats.Add(ra.stats)
	}
	core.SortResults(results)
	m.Progress.EmitExec(name, core.ExecStats{
		TasksSpawned: ss.Spawned,
		TasksStolen:  ss.Stolen,
		ForksInline:  ss.Inline,
	})
	m.Progress.Emit(name, core.PhaseDone, core.MaxItemsetLen(results), stats)
	return m.resultSet(th, db.N(), results, stats), nil
}

// stealForkMinNodes is the fork cutoff of the conditional-tree walk: an
// extension whose conditional tree reaches this many nodes is handed to the
// work-stealing pool instead of recursed inline. A pure function of the
// input-determined tree, never of worker availability (determinism contract
// of parallel.RunStealing).
const stealForkMinNodes = 256

// mineNode is one task's private accumulator: the results and counters of
// the walk it ran inline, plus the nodes of the subtrees it forked away, in
// fork (DFS) order. No locks — exactly one task writes a node, and the
// scheduler's completion edges order those writes before the flatten.
type mineNode struct {
	results  []core.Result
	stats    core.MiningStats
	children []*mineNode
}

// flatten folds the node tree depth-first in fork order, reproducing the
// serial walk's aggregate (result order is canonicalized by
// core.SortResults afterwards; counters are sums and peaks maxima, so the
// fold order cannot move a bit).
func (n *mineNode) flatten(results []core.Result, stats *core.MiningStats) []core.Result {
	results = append(results, n.results...)
	stats.Add(n.stats)
	for _, c := range n.children {
		results = c.flatten(results, stats)
	}
	return results
}

// rootAgg aggregates one top-level header item's walk across the tasks it
// was split into. pending counts the root task plus its live forked
// descendants; the task that brings it to zero owns the completed node tree
// (the decrement publishes every task's writes), flattens it, and emits the
// walk's PhaseSubtree event.
type rootAgg struct {
	name     string
	progress core.ProgressFunc
	base     core.MiningStats // pre-fan-out totals for progress snapshots
	node     mineNode
	pending  atomic.Int64
	canceled atomic.Bool
	results  []core.Result
	stats    core.MiningStats
}

// finish retires one task of this root's walk.
func (ra *rootAgg) finish(canceled bool) {
	if canceled {
		ra.canceled.Store(true)
	}
	if ra.pending.Add(-1) != 0 {
		return
	}
	ra.results = ra.node.flatten(nil, &ra.stats)
	if ra.canceled.Load() {
		// A canceled walk's partials are discarded by the caller; emitting a
		// snapshot for it would report work that never merges.
		return
	}
	snap := ra.base
	snap.Add(ra.stats)
	ra.progress.Emit(ra.name, core.PhaseSubtree, 1, snap)
}

func (m *Miner) resultSet(th core.Thresholds, n int, results []core.Result, stats core.MiningStats) *core.ResultSet {
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.ExpectedSupport,
		Thresholds: th,
		N:          n,
		Results:    results,
		Stats:      stats,
	}
}

type mineState struct {
	items    []core.Item // rank → item
	minCount float64
	results  []core.Result
	stats    *core.MiningStats
	name     string
	progress core.ProgressFunc
	restrict func(core.Itemset) bool
	// forker schedules forked conditional subtrees; forkOK gates forking
	// (false under Exec.DisableSteal). node is this task's accumulator,
	// root the top-level walk it belongs to.
	forker *parallel.Forker
	forkOK bool
	node   *mineNode
	root   *rootAgg
	// done is the run context's cancellation channel (nil when the context
	// cannot be canceled); canceled invalidates the partial results.
	done     <-chan struct{}
	canceled bool
}

// mine recursively extracts frequent extensions of prefix from tr
// (bottom-up over the header table) and builds each extension's conditional
// UFP-tree.
func (st *mineState) mine(tr *tree, prefix []core.Item, liveBytes int64) {
	for r := len(tr.headers) - 1; r >= 0; r-- {
		st.mineOne(tr, prefix, int32(r), liveBytes)
		if st.canceled {
			return
		}
	}
}

// mineOne processes one header item of tr: chain aggregation, the
// frequentness test, and — when frequent — the conditional tree, recursed
// inline or forked onto the work-stealing pool.
func (st *mineState) mineOne(tr *tree, prefix []core.Item, r int32, liveBytes int64) {
	// Per-header-item context check: bounds cancellation latency to one
	// chain aggregation + conditional-tree construction at any depth.
	if st.done != nil {
		select {
		case <-st.done:
			st.canceled = true
			return
		default:
		}
	}
	head := tr.headers[r]
	if head == nil {
		return
	}
	// Disallowed extensions skip before the header-chain walk: under a
	// restriction that aggregation is the cost being saved, and (like
	// the other families) a disallowed extension counts as never
	// generated. The unrestricted path builds the itemset only for
	// frequent extensions, as the serial platform always did.
	var ext []core.Item
	var itemset core.Itemset
	if st.restrict != nil {
		ext = append(prefix, st.items[r])
		itemset = core.NewItemset(ext...)
		if !st.restrict(itemset) {
			return
		}
	}
	// Aggregate the extension's expected support and Σp² over the
	// header chain: each chain node contributes weight·prob and
	// weightSq·prob².
	var esum, esq float64
	for n := head; n != nil; n = n.next {
		esum += n.weight * n.prob
		esq += n.weightSq * n.prob * n.prob
	}
	st.stats.CandidatesGenerated++
	if esum < st.minCount-core.Eps {
		return
	}
	if itemset == nil {
		ext = append(prefix, st.items[r])
		itemset = core.NewItemset(ext...)
	}
	st.results = append(st.results, core.Result{
		Itemset: itemset,
		ESup:    esum,
		Var:     esum - esq, // Σp(1−p) = Σp − Σp²
	})

	// Conditional UFP-tree: for every node in the chain, the path above
	// it becomes a weighted transaction with weight multiplied by this
	// node's probability.
	cond := newTree(int(r))
	var path []wunit
	for n := head; n != nil; n = n.next {
		path = path[:0]
		for p := n.parent; p.rank >= 0; p = p.parent {
			path = append(path, wunit{rank: p.rank, prob: p.prob})
		}
		if len(path) == 0 {
			continue
		}
		// Path was collected bottom-up; reverse into rank order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		cond.insert(path, n.weight*n.prob, n.weightSq*n.prob*n.prob)
	}
	condBytes := cond.bytes()
	if st.forkOK && cond.nodes >= stealForkMinNodes {
		st.forkSubtree(ext, cond, condBytes, liveBytes)
		return
	}
	st.stats.TrackPeak(liveBytes + condBytes)
	if cond.nodes > 0 {
		st.mine(cond, ext, liveBytes+condBytes)
	}
}

// forkSubtree hands an extension's conditional-tree walk to the scheduler
// with its own accumulator node. The child starts from the live-byte level
// the inline recursion would have (parent's path plus the conditional tree)
// and the parent tracks the fork-point peak itself, so the DFS-path memory
// model — and with it MiningStats after the max-merge — is bit-identical to
// inline recursion. ext's backing array is reused by the caller's walk, so
// the prefix is copied before the task escapes; cond is freshly built and
// owned by the forked task.
func (st *mineState) forkSubtree(ext []core.Item, cond *tree, condBytes, liveBytes int64) {
	prefix := make([]core.Item, len(ext))
	copy(prefix, ext)
	child := &mineNode{}
	st.node.children = append(st.node.children, child)
	st.root.pending.Add(1)
	st.stats.TrackPeak(liveBytes + condBytes)
	items, minCount, name, progress, restrict := st.items, st.minCount, st.name, st.progress, st.restrict
	root, done := st.root, st.done
	st.forker.Fork(func(f *parallel.Forker) {
		cm := &mineState{
			items:    items,
			minCount: minCount,
			stats:    &child.stats,
			name:     name,
			progress: progress,
			restrict: restrict,
			forker:   f,
			forkOK:   true,
			node:     child,
			root:     root,
			done:     done,
		}
		cm.mine(cond, prefix, liveBytes+condBytes)
		child.results = cm.results
		root.finish(cm.canceled)
	})
}

// Package ufpgrowth implements UFP-growth [Leung, Mateo, Brajczuk 2008],
// the tree-based divide-and-conquer miner for expected support-based
// frequent itemsets (paper §3.1.2).
//
// The UFP-tree generalizes the FP-tree to uncertain data, with the crucial
// restriction the paper dwells on: two occurrences share a node only when
// both the item AND its existential probability are equal. Continuous
// probabilities therefore produce almost no sharing — the tree degenerates
// toward a trie of distinct paths, and mining must recursively materialize
// conditional subtrees with little compression. This is precisely why the
// paper finds UFP-growth slowest and most memory-hungry among the three
// expected-support algorithms, and this implementation preserves that
// honest cost structure (it builds real conditional UFP-trees rather than
// shortcutting to pattern-base lists).
package ufpgrowth

import (
	"context"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"umine/internal/core"
)

// Miner is the UFP-growth algorithm. The zero value is ready to use.
//
// Setting Rounding > 0 turns the miner into the UCFP-tree variant the
// paper's §4.1 mentions (and declines to benchmark, reporting "no obvious
// optimization"): probabilities are clustered by rounding to the given
// number of decimal digits before tree construction, so occurrences whose
// probabilities fall in the same cluster share a node. Sharing rises and
// memory falls, at the price of approximate expected supports (error per
// occurrence ≤ 0.5·10⁻ᵏ). BenchmarkAblationUCFP quantifies the trade-off —
// reproducing the paper's claim that the compression does not change the
// algorithm's standing.
type Miner struct {
	// Rounding is the number of decimal digits probabilities are rounded
	// to before insertion; 0 (the default) keeps exact probabilities — the
	// plain UFP-tree.
	Rounding int
	// Progress observes the run per top-level conditional subtree (may be
	// nil).
	Progress core.ProgressFunc
	// Restrict, when non-nil, confines the conditional-tree walk to a
	// pre-computed candidate superset: extensions for which it returns
	// false are neither reported nor descended into, so the recursion
	// materializes conditional trees only under allowed prefixes. The
	// global UFP-tree and every header-chain aggregation are built exactly
	// as an unrestricted run builds them, so when the allowed set is a
	// superset of the unrestricted result the restricted run is
	// bit-identical (the SON partition engine's phase-2 hook,
	// umine/internal/partition). May receive transient itemsets it must
	// not retain.
	Restrict func(core.Itemset) bool
}

// SetProgress implements core.ObservableMiner.
func (m *Miner) SetProgress(fn core.ProgressFunc) { m.Progress = fn }

// SetRestrict implements core.RestrictableMiner.
func (m *Miner) SetRestrict(allow func(core.Itemset) bool) { m.Restrict = allow }

// Name implements core.Miner.
func (m *Miner) Name() string {
	if m.Rounding > 0 {
		return fmt.Sprintf("UCFP-tree(%d)", m.Rounding)
	}
	return "UFP-growth"
}

// Semantics implements core.Miner.
func (m *Miner) Semantics() core.Semantics { return core.ExpectedSupport }

// node is one UFP-tree node: an (item-rank, probability) pair with the
// number of transactions flowing through it. In conditional trees the count
// becomes fractional (weight = count × accumulated probability), and a
// parallel weightSq accumulator carries Σ count·p² so support variances are
// available at no extra asymptotic cost.
type node struct {
	rank     int32
	prob     float64
	weight   float64 // Σ over represented transactions of Π probs of the prefix below the conditioning point
	weightSq float64 // Σ of the squared products (for Var = Σp − Σp²)
	parent   *node
	children map[childKey]*node
	next     *node // header chain
}

type childKey struct {
	rank     int32
	probBits uint64
}

// tree is a UFP-tree with its header table.
type tree struct {
	root    *node
	headers []*node // per rank: chain of nodes via next
	nodes   int64   // node count, for memory tracking
}

func newTree(numRanks int) *tree {
	return &tree{
		root:    &node{rank: -1, children: map[childKey]*node{}},
		headers: make([]*node, numRanks),
	}
}

// wunit is one unit of a weighted (conditional) transaction.
type wunit struct {
	rank int32
	prob float64
}

// insert adds a weighted transaction (units in rank order) to the tree.
func (t *tree) insert(units []wunit, weight, weightSq float64) {
	n := t.root
	for _, u := range units {
		key := childKey{rank: u.rank, probBits: math.Float64bits(u.prob)}
		child := n.children[key]
		if child == nil {
			child = &node{
				rank:     u.rank,
				prob:     u.prob,
				parent:   n,
				children: map[childKey]*node{},
				next:     t.headers[u.rank],
			}
			t.headers[u.rank] = child
			n.children[key] = child
			t.nodes++
		}
		child.weight += weight
		child.weightSq += weightSq
		n = child
	}
}

// bytes estimates the tree's heap footprint.
func (t *tree) bytes() int64 {
	const perNode = int64(unsafe.Sizeof(node{})) + 48 // node + map overhead estimate
	return t.nodes * perNode
}

// Mine implements core.Miner. Cancellation lands between header items of
// the conditional-tree walk — before each extension's chain aggregation and
// conditional-tree construction — at every recursion depth.
func (m *Miner) Mine(ctx context.Context, db *core.Database, th core.Thresholds) (*core.ResultSet, error) {
	if err := th.Validate(core.ExpectedSupport); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrUnsupportedThresholds, err)
	}
	var stats core.MiningStats
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	minCount := th.MinESupCount(db.N())

	// Pass 1: frequent items, ordered by descending expected support
	// (§3.1.2's header list).
	esup, _ := db.ItemESupVar()
	stats.DBScans++
	order, rank := core.FrequencyOrder(esup, minCount)
	if len(order) == 0 {
		// Still a completed run: the observer contract promises a final
		// PhaseDone event even when nothing is frequent.
		m.Progress.Emit(m.Name(), core.PhaseDone, 0, stats)
		return m.resultSet(th, db.N(), nil, stats), nil
	}

	// Pass 2: build the global UFP-tree from projected transactions.
	stats.DBScans++
	t := newTree(len(order))
	round := func(p float64) float64 { return p }
	if m.Rounding > 0 {
		scale := math.Pow(10, float64(m.Rounding))
		round = func(p float64) float64 {
			r := math.Round(p*scale) / scale
			if r <= 0 {
				r = 1 / scale // keep clustered occurrences alive
			}
			if r > 1 {
				r = 1
			}
			return r
		}
	}
	var buf []wunit
	for j, n := 0, db.N(); j < n; j++ {
		tx := db.Tx(j)
		buf = buf[:0]
		for i, it := range tx.Items {
			if r := rank[it]; r >= 0 {
				buf = append(buf, wunit{rank: int32(r), prob: round(tx.Probs[i])})
			}
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].rank < buf[j].rank })
		t.insert(buf, 1, 1)
	}
	liveBytes := t.bytes()
	stats.TrackPeak(liveBytes)

	st := &mineState{
		items:    order,
		minCount: minCount,
		stats:    &stats,
		done:     ctx.Done(),
		name:     m.Name(),
		progress: m.Progress,
		restrict: m.Restrict,
	}
	st.mine(t, nil, liveBytes)
	if st.canceled {
		return nil, ctx.Err()
	}
	core.SortResults(st.results)
	m.Progress.Emit(m.Name(), core.PhaseDone, core.MaxItemsetLen(st.results), stats)
	return m.resultSet(th, db.N(), st.results, stats), nil
}

func (m *Miner) resultSet(th core.Thresholds, n int, results []core.Result, stats core.MiningStats) *core.ResultSet {
	return &core.ResultSet{
		Algorithm:  m.Name(),
		Semantics:  core.ExpectedSupport,
		Thresholds: th,
		N:          n,
		Results:    results,
		Stats:      stats,
	}
}

type mineState struct {
	items    []core.Item // rank → item
	minCount float64
	results  []core.Result
	stats    *core.MiningStats
	name     string
	progress core.ProgressFunc
	restrict func(core.Itemset) bool
	// done is the run context's cancellation channel (nil when the context
	// cannot be canceled); canceled invalidates the partial results.
	done     <-chan struct{}
	canceled bool
}

// mine recursively extracts frequent extensions of prefix from tr
// (bottom-up over the header table) and builds each extension's conditional
// UFP-tree.
func (st *mineState) mine(tr *tree, prefix []core.Item, liveBytes int64) {
	for r := len(tr.headers) - 1; r >= 0; r-- {
		// Per-header-item context check: bounds cancellation latency to one
		// chain aggregation + conditional-tree construction at any depth.
		if st.done != nil {
			select {
			case <-st.done:
				st.canceled = true
				return
			default:
			}
		}
		head := tr.headers[r]
		if head == nil {
			continue
		}
		// Disallowed extensions skip before the header-chain walk: under a
		// restriction that aggregation is the cost being saved, and (like
		// the other families) a disallowed extension counts as never
		// generated. The unrestricted path builds the itemset only for
		// frequent extensions, as the serial platform always did.
		var ext []core.Item
		var itemset core.Itemset
		if st.restrict != nil {
			ext = append(prefix, st.items[r])
			itemset = core.NewItemset(ext...)
			if !st.restrict(itemset) {
				continue
			}
		}
		// Aggregate the extension's expected support and Σp² over the
		// header chain: each chain node contributes weight·prob and
		// weightSq·prob².
		var esum, esq float64
		for n := head; n != nil; n = n.next {
			esum += n.weight * n.prob
			esq += n.weightSq * n.prob * n.prob
		}
		st.stats.CandidatesGenerated++
		if esum < st.minCount-core.Eps {
			continue
		}
		if itemset == nil {
			ext = append(prefix, st.items[r])
			itemset = core.NewItemset(ext...)
		}
		st.results = append(st.results, core.Result{
			Itemset: itemset,
			ESup:    esum,
			Var:     esum - esq, // Σp(1−p) = Σp − Σp²
		})

		// Conditional UFP-tree: for every node in the chain, the path above
		// it becomes a weighted transaction with weight multiplied by this
		// node's probability.
		cond := newTree(r)
		var path []wunit
		for n := head; n != nil; n = n.next {
			path = path[:0]
			for p := n.parent; p.rank >= 0; p = p.parent {
				path = append(path, wunit{rank: p.rank, prob: p.prob})
			}
			if len(path) == 0 {
				continue
			}
			// Path was collected bottom-up; reverse into rank order.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			cond.insert(path, n.weight*n.prob, n.weightSq*n.prob*n.prob)
		}
		condBytes := cond.bytes()
		st.stats.TrackPeak(liveBytes + condBytes)
		if cond.nodes > 0 {
			st.mine(cond, ext, liveBytes+condBytes)
			if st.canceled {
				return
			}
		}
		if len(prefix) == 0 {
			st.progress.Emit(st.name, core.PhaseSubtree, 1, *st.stats)
		}
	}
}

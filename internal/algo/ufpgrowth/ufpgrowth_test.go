package ufpgrowth

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"umine/internal/core"
	"umine/internal/core/coretest"
)

func TestPaperExample1(t *testing.T) {
	db := coretest.PaperDB()
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("got %d itemsets, want 2 (A, C): %+v", rs.Len(), rs.Results)
	}
	c, _ := rs.Lookup(core.NewItemset(coretest.C))
	if math.Abs(c.ESup-2.6) > 1e-12 {
		t.Fatalf("esup(C) = %v", c.ESup)
	}
}

func TestPaperFigure1Threshold(t *testing.T) {
	// Figure 1 builds the UFP-tree at min_esup = 0.25; all six items are
	// frequent there. Check the mined item layer matches.
	db := coretest.PaperDB()
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for it, want := range map[core.Item]float64{
		coretest.A: 2.1, coretest.B: 1.4, coretest.C: 2.6,
		coretest.D: 1.2, coretest.E: 1.3, coretest.F: 1.8,
	} {
		r, ok := rs.Lookup(core.NewItemset(it))
		if !ok {
			t.Fatalf("item %d missing", it)
		}
		if math.Abs(r.ESup-want) > 1e-12 {
			t.Fatalf("esup(%d) = %v, want %v", it, r.ESup, want)
		}
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 60; trial++ {
		db := coretest.RandomDB(rng, 10+rng.Intn(30), 6, 0.3+0.5*rng.Float64())
		minESup := 0.05 + 0.5*rng.Float64()
		rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: minESup})
		if err != nil {
			t.Fatal(err)
		}
		want := coretest.BruteForceExpected(db, minESup)
		if rs.Len() != len(want) {
			t.Fatalf("trial %d: got %d itemsets, want %d", trial, rs.Len(), len(want))
		}
		for i := range want {
			if !rs.Results[i].Itemset.Equal(want[i].Itemset) {
				t.Fatalf("itemset %d: %v vs %v", i, rs.Results[i].Itemset, want[i].Itemset)
			}
			if math.Abs(rs.Results[i].ESup-want[i].ESup) > 1e-9 {
				t.Fatalf("%v esup %v vs %v", want[i].Itemset, rs.Results[i].ESup, want[i].ESup)
			}
			if math.Abs(rs.Results[i].Var-want[i].Var) > 1e-9 {
				t.Fatalf("%v var %v vs %v", want[i].Itemset, rs.Results[i].Var, want[i].Var)
			}
		}
	}
}

func TestNodeSharingRequiresEqualProbability(t *testing.T) {
	// Two transactions with the same leading item but different
	// probabilities must occupy two tree nodes; with equal probabilities,
	// one shared node (the paper's central structural observation).
	shared := newTree(2)
	shared.insert([]wunit{{rank: 0, prob: 0.5}}, 1, 1)
	shared.insert([]wunit{{rank: 0, prob: 0.5}}, 1, 1)
	if shared.nodes != 1 {
		t.Fatalf("equal probabilities: %d nodes, want 1", shared.nodes)
	}
	split := newTree(2)
	split.insert([]wunit{{rank: 0, prob: 0.5}}, 1, 1)
	split.insert([]wunit{{rank: 0, prob: 0.6}}, 1, 1)
	if split.nodes != 2 {
		t.Fatalf("different probabilities: %d nodes, want 2", split.nodes)
	}
}

func TestRoundedProbabilitiesShareNodes(t *testing.T) {
	// With probabilities drawn from a small discrete set, the UFP-tree must
	// actually compress (fewer nodes than total units) and still mine
	// exactly.
	rng := rand.New(rand.NewSource(302))
	db := coretest.RandomDBRounded(rng, 60, 5, 0.7, 2) // probs ∈ {0.5, 1.0}
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	want := coretest.BruteForceExpected(db, 0.15)
	if rs.Len() != len(want) {
		t.Fatalf("got %d itemsets, want %d", rs.Len(), len(want))
	}
	for i := range want {
		if math.Abs(rs.Results[i].ESup-want[i].ESup) > 1e-9 {
			t.Fatalf("%v esup %v vs %v", want[i].Itemset, rs.Results[i].ESup, want[i].ESup)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	rs, err := (&Miner{}).Mine(context.Background(), core.MustNewDatabase("empty", nil), core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatal("results on empty database")
	}
	single := core.MustNewDatabase("one", [][]core.Unit{{{Item: 3, Prob: 0.9}}})
	rs, err = (&Miner{}).Mine(context.Background(), single, core.Thresholds{MinESup: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || !rs.Results[0].Itemset.Equal(core.NewItemset(3)) {
		t.Fatalf("results = %+v", rs.Results)
	}
}

func TestRejectsBadThresholds(t *testing.T) {
	if _, err := (&Miner{}).Mine(context.Background(), coretest.PaperDB(), core.Thresholds{MinESup: -1}); err == nil {
		t.Fatal("negative min_esup accepted")
	}
}

func TestMemoryTrackingGrowsWithConditionalTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	db := coretest.RandomDB(rng, 80, 8, 0.6)
	rs, err := (&Miner{}).Mine(context.Background(), db, core.Thresholds{MinESup: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.PeakTrackedBytes == 0 {
		t.Fatal("peak bytes not tracked")
	}
	if rs.Stats.DBScans != 2 {
		t.Fatalf("UFP-growth must scan the database exactly twice, got %d", rs.Stats.DBScans)
	}
}

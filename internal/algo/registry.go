// The registry assembles the paper's eight algorithm implementations (plus
// the sampling extension) behind a single surface keyed by the paper's
// experiment labels, so the harness, the CLI tools and the public API
// construct miners uniformly.

package algo

import (
	"fmt"
	"sort"

	"umine/internal/algo/approx"
	"umine/internal/algo/exact"
	"umine/internal/algo/sampling"
	"umine/internal/algo/uapriori"
	"umine/internal/algo/ufpgrowth"
	"umine/internal/algo/uhmine"
	"umine/internal/core"
)

// Family groups the algorithms as in the paper's Section 3.
type Family int

const (
	// ExpectedSupportFamily: UApriori, UFP-growth, UH-Mine (§3.1).
	ExpectedSupportFamily Family = iota
	// ExactFamily: DPNB, DPB, DCNB, DCB (§3.2).
	ExactFamily
	// ApproxFamily: PDUApriori, NDUApriori, NDUH-Mine (§3.3).
	ApproxFamily
)

func (f Family) String() string {
	switch f {
	case ExpectedSupportFamily:
		return "expected-support"
	case ExactFamily:
		return "exact-probabilistic"
	case ApproxFamily:
		return "approximate-probabilistic"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Entry describes one registered algorithm: its identity plus the
// capability metadata callers consult without constructing a miner
// (cf. SupportsWorkers — previously answered by building a throwaway
// instance and type-asserting it).
type Entry struct {
	Name   string
	Family Family
	// Parallel reports whether the miner has a parallel phase controlled by
	// Options.Workers (implements core.ParallelMiner). Kept in the table —
	// and cross-checked against the constructed type by
	// TestRegistryCapabilityMetadata — so capability queries cost a table
	// scan, not an allocation.
	Parallel bool
	// Partition reports whether the miner supports the SON partitioned
	// two-phase mine of Options.Partitions (implements
	// core.RestrictableMiner, so the partition engine's phase-2
	// verification can confine it to the candidate union). MCSampling is
	// the one exclusion: its sequential possible-world sampling is seeded
	// per run, so a restricted re-run draws different worlds and
	// bit-identity to a single-shot mine cannot hold. Cross-checked by
	// TestRegistryCapabilityMetadata like Parallel.
	Partition bool
	// New constructs a fresh miner instance (miners are stateless but kept
	// per-run for clarity).
	New func() core.Miner
}

var registry = []Entry{
	{"UApriori", ExpectedSupportFamily, true, true, func() core.Miner { return &uapriori.Miner{} }},
	{"UFP-growth", ExpectedSupportFamily, true, true, func() core.Miner { return &ufpgrowth.Miner{} }},
	{"UH-Mine", ExpectedSupportFamily, true, true, func() core.Miner { return &uhmine.Miner{} }},
	{"DPNB", ExactFamily, true, true, func() core.Miner { return &exact.Miner{Method: exact.DP} }},
	{"DPB", ExactFamily, true, true, func() core.Miner { return &exact.Miner{Method: exact.DP, Chernoff: true} }},
	{"DCNB", ExactFamily, true, true, func() core.Miner { return &exact.Miner{Method: exact.DC} }},
	{"DCB", ExactFamily, true, true, func() core.Miner { return &exact.Miner{Method: exact.DC, Chernoff: true} }},
	{"PDUApriori", ApproxFamily, true, true, func() core.Miner { return &approx.PDUApriori{} }},
	{"NDUApriori", ApproxFamily, true, true, func() core.Miner { return &approx.NDUApriori{} }},
	{"NDUH-Mine", ApproxFamily, true, true, func() core.Miner { return &approx.NDUHMine{} }},
	// MCSampling is an extension beyond the paper's eight algorithms: the
	// possible-world sampling estimator of the paper's reference [11]
	// (Calders et al., PAKDD 2010). See internal/algo/sampling. It is the
	// one non-partitionable configuration (see Entry.Partition).
	{"MCSampling", ApproxFamily, true, false, func() core.Miner { return &sampling.Miner{} }},
}

// lookup resolves a registry name to its entry — the single place name
// resolution happens, shared by every capability query and constructor.
func lookup(name string) (Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// SupportsWorkers reports whether the named algorithm has a parallel phase
// controlled by Options.Workers, from the registry's capability metadata
// (no miner is constructed). Unknown names report false.
func SupportsWorkers(name string) bool {
	e, ok := lookup(name)
	return ok && e.Parallel
}

// SupportsPartitions reports whether the named algorithm supports the SON
// partitioned two-phase mine of Options.Partitions, from the registry's
// capability metadata. Unknown names report false.
func SupportsPartitions(name string) bool {
	e, ok := lookup(name)
	return ok && e.Partition
}

// New returns a fresh miner by registry name, configured for serial
// execution (the paper's single-threaded platform).
func New(name string) (core.Miner, error) {
	return NewWith(name, core.Options{})
}

// NewWith returns a fresh miner by registry name with the cross-cutting
// execution options applied. Options a miner does not support (e.g. Workers
// on a purely serial miner, Partitions on MCSampling) are ignored — every
// miner returns an identical ResultSet for every Options value. With
// Partitions > 1 on a partition-capable algorithm the returned miner is the
// SON two-phase engine wrapping it (see umine/internal/partition).
func NewWith(name string, opts core.Options) (core.Miner, error) {
	e, ok := lookup(name)
	if !ok {
		return nil, errUnknown(name)
	}
	if opts.Partitions > 1 && e.Partition {
		return NewPartitionEngine(name, opts)
	}
	m := e.New()
	core.ApplyOptions(m, opts)
	return m, nil
}

// errUnknown is the uniform unknown-algorithm error.
func errUnknown(name string) error {
	return fmt.Errorf("algo: unknown algorithm %q (known: %v)", name, Names())
}

// MustNew is New panicking on unknown names; for tables of experiments.
func MustNew(name string) core.Miner {
	m, err := New(name)
	if err != nil {
		panic(err)
	}
	return m
}

// MustNewWith is NewWith panicking on unknown names.
func MustNewWith(name string, opts core.Options) core.Miner {
	m, err := NewWith(name, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists all registered algorithm names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// ByFamily returns the names of the algorithms in one family.
func ByFamily(f Family) []string {
	var out []string
	for _, e := range registry {
		if e.Family == f {
			out = append(out, e.Name)
		}
	}
	return out
}

// Entries returns a copy of the registry sorted by name.
func Entries() []Entry {
	out := append([]Entry(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

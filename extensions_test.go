package umine

import (
	"context"
	"math"
	"testing"
)

func TestGenerateRulesFacade(t *testing.T) {
	db := table1(t)
	rs, err := Mine("UApriori", db, Thresholds{MinESup: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	rulesOut, err := GenerateRules(rs, RuleConfig{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rulesOut) == 0 {
		t.Fatal("no rules from the paper database at conf 0.5")
	}
	// A ⇒ C should be a strong rule: esup(AC)/esup(A) with
	// esup(AC) = 0.72 + 0.72 + 0.40 = 1.84 and esup(A) = 2.1.
	for _, r := range rulesOut {
		if r.Antecedent.Equal(NewItemset(0)) && r.Consequent.Equal(NewItemset(2)) {
			if math.Abs(r.Confidence-1.84/2.1) > 1e-9 {
				t.Errorf("conf(A ⇒ C) = %v, want %v", r.Confidence, 1.84/2.1)
			}
			return
		}
	}
	t.Error("rule A ⇒ C not generated")
}

func TestClosedMaximalTopKFacade(t *testing.T) {
	db := table1(t)
	rs, err := Mine("UApriori", db, Thresholds{MinESup: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	closed := FilterClosed(rs)
	maximal := FilterMaximal(rs)
	if maximal.Len() > closed.Len() || closed.Len() > rs.Len() {
		t.Fatalf("size ordering violated: %d ≥ %d ≥ %d expected",
			rs.Len(), closed.Len(), maximal.Len())
	}
	top := TopK(rs, 2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d", len(top))
	}
	// {C} has the highest expected support (2.6).
	if !top[0].Itemset.Equal(NewItemset(2)) {
		t.Errorf("top itemset = %v, want {C}", top[0].Itemset)
	}
}

func TestSamplingMinerFacade(t *testing.T) {
	db := table1(t)
	m := NewSamplingMiner(0.05, 0.05, 1)
	rs, err := m.Mine(context.Background(), db, Thresholds{MinSup: 0.5, PFT: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Exact answer: {A} and {C}.
	if rs.Len() != 2 {
		t.Errorf("sampling miner found %d itemsets, want 2", rs.Len())
	}
	if m.Name() != "MCSampling" {
		t.Errorf("miner name %q", m.Name())
	}
	if m.Semantics() != Probabilistic {
		t.Errorf("semantics %v", m.Semantics())
	}
}

func TestSupportIntervalFacade(t *testing.T) {
	db := table1(t)
	lo, hi := SupportInterval(db, NewItemset(0), 0.05)
	// sup(A) over probabilities (0.8, 0.8, 0.5): mean 2.1, range [0, 3].
	if lo < 0 || hi > 3 || lo > hi {
		t.Fatalf("interval [%d, %d] out of range", lo, hi)
	}
	if lo > 2 || hi < 2 {
		t.Errorf("95%% interval [%d, %d] should cover the mean 2.1", lo, hi)
	}
	// A certain itemset has a degenerate interval.
	certain := MustNewDatabase("c", [][]Unit{
		{{Item: 0, Prob: 1}}, {{Item: 0, Prob: 1}},
	})
	lo, hi = SupportInterval(certain, NewItemset(0), 0.05)
	if lo != 2 || hi != 2 {
		t.Errorf("certain support interval [%d, %d], want [2, 2]", lo, hi)
	}
}

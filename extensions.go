package umine

// Extensions beyond the paper's eight algorithms: association-rule
// generation over uncertain frequent itemsets, condensed representations
// (closed / maximal), top-k selection, and direct construction of the
// possible-world sampling miner with custom guarantees. See the package
// docs of umine/internal/rules and umine/internal/algo/sampling for the
// algorithms and their provenance.

import (
	"io"

	"umine/internal/algo/sampling"
	"umine/internal/algo/topk"
	"umine/internal/core"
	"umine/internal/prob"
	"umine/internal/rules"
	"umine/internal/stream"
)

// Rule is an association rule X ⇒ Y over an uncertain database, measured by
// expected support, expected confidence and lift.
type Rule = rules.Rule

// RuleConfig controls association-rule generation.
type RuleConfig = rules.Config

// GenerateRules derives all association rules with expected confidence at
// least cfg.MinConfidence from a mined result set (which is subset-closed
// by the anti-monotonicity of both frequentness definitions).
func GenerateRules(rs *ResultSet, cfg RuleConfig) ([]Rule, error) {
	return rules.Generate(rs, cfg)
}

// FilterClosed keeps only closed itemsets: those with no proper superset of
// equal expected support in the result set.
func FilterClosed(rs *ResultSet) *ResultSet { return core.FilterClosed(rs) }

// FilterMaximal keeps only maximal itemsets: those with no proper superset
// in the result set.
func FilterMaximal(rs *ResultSet) *ResultSet { return core.FilterMaximal(rs) }

// TopK returns the k results with the highest expected support, descending.
func TopK(rs *ResultSet, k int) []Result { return core.TopK(rs, k) }

// NewSamplingMiner constructs the possible-world sampling miner (the
// paper's reference [11], Calders et al. 2010) with an explicit (ε, δ)
// estimation guarantee; the registry's "MCSampling" uses the defaults
// (ε = 0.02, δ = 0.05).
func NewSamplingMiner(epsilon, delta float64, seed int64) Miner {
	return &sampling.Miner{Epsilon: epsilon, Delta: delta, Seed: seed}
}

// MineTopK returns the k itemsets with the highest expected support,
// descending, without a threshold — a rising-bound level-wise search (see
// umine/internal/algo/topk). maxLen bounds the itemset length (0 =
// unbounded).
func MineTopK(db *Database, k, maxLen int) ([]Result, error) {
	out, _, err := (&topk.Miner{K: k, MaxLen: maxLen}).Mine(db)
	return out, err
}

// WriteResultsCSV serializes a result set as CSV (header + one row per
// itemset).
func WriteResultsCSV(w io.Writer, rs *ResultSet) error { return rs.WriteCSV(w) }

// WriteResultsJSON serializes a result set as an indented JSON document;
// ReadResultsJSON parses it back.
func WriteResultsJSON(w io.Writer, rs *ResultSet) error { return rs.WriteJSON(w) }

// ReadResultsJSON parses a result set written by WriteResultsJSON.
func ReadResultsJSON(r io.Reader) (*ResultSet, error) { return core.ReadJSON(r) }

// Window is a sliding window over an uncertain transaction stream with
// incrementally maintained expected supports and Normal-approximation
// frequent probabilities (see umine/internal/stream).
type Window = stream.Window

// WindowConfig parameterizes NewWindow.
type WindowConfig = stream.Config

// NewWindow builds a sliding window over an uncertain transaction stream.
func NewWindow(cfg WindowConfig) (*Window, error) { return stream.NewWindow(cfg) }

// SupportInterval returns the central (1−alpha) confidence interval
// [lo, hi] of the support of itemset x over db, from the exact
// Poisson-Binomial distribution: Pr{lo ≤ sup(X) ≤ hi} ≥ 1−alpha. It
// complements the point measures (esup, frequent probability) with a range
// a report can print. Cost O(N·msc); intended for selected itemsets, not
// whole result sets.
func SupportInterval(db *Database, x Itemset, alpha float64) (lo, hi int) {
	ps := db.TxProbs(x)
	nonzero := ps[:0]
	for _, p := range ps {
		if p > 0 {
			nonzero = append(nonzero, p)
		}
	}
	return prob.PBInterval(nonzero, alpha)
}

#!/bin/sh
# Smoke test for the userve mining service: boot the real binary, register a
# generated profile over HTTP, run one /mine query and assert 200 + a
# non-empty result set, exercise /ingest + the version bump, assert a
# tiny-timeout /mine aborts its in-flight job promptly (503, canceled count
# bumped, server still healthy), and shut down.
# Mirrored by the "Server smoke" CI job; run locally via `make smoke-server`.
set -eu

ADDR="127.0.0.1:18573"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SERVER_PID=""
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "smoke: building userve"
go build -o "$TMP/userve" ./cmd/userve

"$TMP/userve" -addr "$ADDR" >"$TMP/userve.log" 2>&1 &
SERVER_PID=$!

echo "smoke: waiting for $BASE/healthz"
i=0
until curl -sf --max-time 2 "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: FAIL — server did not come up"
        cat "$TMP/userve.log"
        exit 1
    fi
    sleep 0.2
done

check() { # check NAME EXPECTED_STATUS BODY_FILE STATUS
    if [ "$4" != "$2" ]; then
        echo "smoke: FAIL — $1 returned HTTP $4 (want $2)"
        cat "$3"
        exit 1
    fi
    echo "smoke: $1 ok (HTTP $4)"
}

STATUS=$(curl -s -o "$TMP/register.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"smoke","profile":"gazelle","scale":0.01,"seed":1}')
check "register profile" 201 "$TMP/register.json" "$STATUS"

STATUS=$(curl -s -o "$TMP/mine.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"smoke","algorithm":"UApriori","min_esup":0.005}')
check "/mine" 200 "$TMP/mine.json" "$STATUS"
if ! grep -q '"itemset"' "$TMP/mine.json"; then
    echo "smoke: FAIL — /mine returned an empty result set"
    cat "$TMP/mine.json"
    exit 1
fi
echo "smoke: /mine returned a non-empty result set"

STATUS=$(curl -s -o "$TMP/ingest.json" -w '%{http_code}' -X POST "$BASE/ingest" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"smoke","transactions":["0:0.9 1:0.5","2:1.0"]}')
check "/ingest" 200 "$TMP/ingest.json" "$STATUS"
grep -q '"version": 1' "$TMP/ingest.json" || {
    echo "smoke: FAIL — ingest did not bump the dataset version"
    cat "$TMP/ingest.json"
    exit 1
}

STATUS=$(curl -s -o "$TMP/stats.json" -w '%{http_code}' "$BASE/stats")
check "/stats" 200 "$TMP/stats.json" "$STATUS"

# Scatter-gather sharding: the same generated dataset registered unsharded
# and with 4 sub-shards must serve byte-identical /mine documents (the SON
# two-phase mine is bit-identical to single-shot), and /stats must count the
# partitions mined.
STATUS=$(curl -s -o "$TMP/sg1.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"sg1","profile":"gazelle","scale":0.01,"seed":7}')
check "register unsharded twin" 201 "$TMP/sg1.json" "$STATUS"
STATUS=$(curl -s -o "$TMP/sg4.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"sg4","profile":"gazelle","scale":0.01,"seed":7,"shards":4}')
check "register sharded twin" 201 "$TMP/sg4.json" "$STATUS"
STATUS=$(curl -s -o "$TMP/mine_sg1.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"sg1","algorithm":"UApriori","min_esup":0.005}')
check "/mine unsharded twin" 200 "$TMP/mine_sg1.json" "$STATUS"
STATUS=$(curl -s -o "$TMP/mine_sg4.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"sg4","algorithm":"UApriori","min_esup":0.005}')
check "/mine sharded twin" 200 "$TMP/mine_sg4.json" "$STATUS"
if ! cmp -s "$TMP/mine_sg1.json" "$TMP/mine_sg4.json"; then
    echo "smoke: FAIL — sharded /mine document differs from unsharded"
    diff "$TMP/mine_sg1.json" "$TMP/mine_sg4.json" | head -20
    exit 1
fi
echo "smoke: sharded /mine is byte-identical to unsharded"
STATUS=$(curl -s -o "$TMP/stats_sg.json" -w '%{http_code}' "$BASE/stats")
check "/stats after sharded mine" 200 "$TMP/stats_sg.json" "$STATUS"
if ! grep -Eq '"partitions_mined": *4(,|$)' "$TMP/stats_sg.json"; then
    echo "smoke: FAIL — /stats did not count 4 partitions mined"
    cat "$TMP/stats_sg.json"
    exit 1
fi
echo "smoke: /stats counted the scatter-gather partitions"

# Per-request timeout aborts a running mine. The slow dataset/algorithm pair
# (DCNB at min_sup 0.1 on an accident-like profile) needs ~10s uncancelled;
# a 250ms timeout_ms must therefore abort it in flight, return 503 promptly,
# bump the canceled counter, and leave the server healthy.
STATUS=$(curl -s -o "$TMP/slow.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"slow","profile":"accident","scale":0.01,"seed":1}')
check "register slow profile" 201 "$TMP/slow.json" "$STATUS"

T0=$(date +%s)
STATUS=$(curl -s --max-time 30 -o "$TMP/timeout.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"slow","algorithm":"DCNB","min_sup":0.1,"pft":0.9,"timeout_ms":250,"no_cache":true}')
T1=$(date +%s)
check "/mine with timeout_ms=250" 503 "$TMP/timeout.json" "$STATUS"
if ! grep -q 'context deadline exceeded' "$TMP/timeout.json"; then
    echo "smoke: FAIL — timed-out /mine did not report a deadline error"
    cat "$TMP/timeout.json"
    exit 1
fi
if [ $((T1 - T0)) -gt 5 ]; then
    echo "smoke: FAIL — timed-out /mine took $((T1 - T0))s to return (cancellation not prompt)"
    exit 1
fi
echo "smoke: timed-out /mine aborted in-flight work promptly ($((T1 - T0))s)"

STATUS=$(curl -s -o "$TMP/healthz2.json" -w '%{http_code}' "$BASE/healthz")
check "/healthz after cancellation" 200 "$TMP/healthz2.json" "$STATUS"

STATUS=$(curl -s -o "$TMP/stats2.json" -w '%{http_code}' "$BASE/stats")
check "/stats after cancellation" 200 "$TMP/stats2.json" "$STATUS"
if ! grep -Eq '"canceled": *[1-9]' "$TMP/stats2.json"; then
    echo "smoke: FAIL — /stats canceled count did not increment"
    cat "$TMP/stats2.json"
    exit 1
fi
echo "smoke: /stats counted the canceled job"

echo "smoke: PASS"

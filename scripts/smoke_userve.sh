#!/bin/sh
# Smoke test for the userve mining service.
#
# Default (local) mode: boot the real binary, register a generated profile
# over HTTP, run one /mine query and assert 200 + a non-empty result set,
# exercise /ingest + the version bump, assert a tiny-timeout /mine aborts
# its in-flight job promptly (503, canceled count bumped, server still
# healthy), and shut down.
# Mirrored by the "Server smoke" CI job; run locally via `make smoke-server`.
#
# `smoke_userve.sh shards` instead boots a real multi-process cluster — two
# ushard shard servers plus a userve coordinator routing phase 1 over them —
# and asserts the RPC-backed /mine document is byte-identical to the
# in-process path, including after an /ingest version bump invalidates the
# shards' pinned slices. Mirrored by the "Sharded mining (multi-process)"
# CI job; run locally via `make smoke-shards`.
#
# `smoke_userve.sh metrics` boots the same three-process cluster and checks
# the observability surface: /metrics on the coordinator and both shards
# parses as Prometheus text with the expected families, histogram counts
# stay monotonic across scrapes under load, and the sharded /mine leaves
# one stitched trace (coordinator phases + wire-propagated shard spans) at
# /debug/traces. Mirrored by the "Telemetry smoke" CI job; run locally via
# `make smoke-metrics`.
#
# `smoke_userve.sh subscribe` exercises the continuous-query surface with
# the real usub client: subscribe to a dataset over /subscribe (SSE), ingest
# a batch, and assert the streamed snapshot + refresh diff arrive and that
# the refreshed result-set size matches a direct /mine of the grown dataset.
# Mirrored by the "Continuous queries" CI job; run locally via
# `make smoke-subscribe`.
#
# `smoke_userve.sh explain` exercises the query-level observability surface
# against the real 2-shard cluster: POST /explain over the shardrpc backend
# must report the executed plan (partition steps, shard attempt timeline,
# pushed bytes), a repeat GET /explain must report the cache-hit path,
# /debug/workload must profile the query group, and /debug/dashboard must
# render. Mirrored by the "Query observability" CI job; run locally via
# `make smoke-explain`.
set -eu

MODE="${1:-local}"
ADDR="127.0.0.1:18573"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SERVER_PID=""
SHARD1_PID=""
SHARD2_PID=""
USUB_PID=""
trap 'kill "${SERVER_PID:-}" "${SHARD1_PID:-}" "${SHARD2_PID:-}" "${USUB_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "smoke: building userve"
go build -o "$TMP/userve" ./cmd/userve

wait_healthz() { # wait_healthz URL LOG
    i=0
    until curl -sf --max-time 2 "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "smoke: FAIL — server at $1 did not come up"
            cat "$2"
            exit 1
        fi
        sleep 0.2
    done
}

check() { # check NAME EXPECTED_STATUS BODY_FILE STATUS
    if [ "$4" != "$2" ]; then
        echo "smoke: FAIL — $1 returned HTTP $4 (want $2)"
        cat "$3"
        exit 1
    fi
    echo "smoke: $1 ok (HTTP $4)"
}

if [ "$MODE" = "shards" ]; then
    echo "smoke: building ushard"
    go build -o "$TMP/ushard" ./cmd/ushard

    SHARD1="127.0.0.1:18671"
    SHARD2="127.0.0.1:18672"
    "$TMP/ushard" -addr "$SHARD1" >"$TMP/ushard1.log" 2>&1 &
    SHARD1_PID=$!
    "$TMP/ushard" -addr "$SHARD2" >"$TMP/ushard2.log" 2>&1 &
    SHARD2_PID=$!
    wait_healthz "http://$SHARD1" "$TMP/ushard1.log"
    wait_healthz "http://$SHARD2" "$TMP/ushard2.log"
    echo "smoke: 2 ushard shard servers up"

    "$TMP/userve" -addr "$ADDR" -shards "$SHARD1,$SHARD2" >"$TMP/userve.log" 2>&1 &
    SERVER_PID=$!
    wait_healthz "$BASE" "$TMP/userve.log"
    echo "smoke: coordinator up with shard pool $SHARD1,$SHARD2"

    # Twin datasets from the same generator: "flat" mines single-shot in
    # the coordinator process, "rpc" scatters phase 1 over the two ushard
    # processes. Bit-identity of the SON decomposition means the /mine
    # documents must match byte for byte.
    STATUS=$(curl -s -o "$TMP/flat.json" -w '%{http_code}' -X POST "$BASE/datasets" \
        -H 'Content-Type: application/json' \
        -d '{"name":"flat","profile":"gazelle","scale":0.01,"seed":7}')
    check "register in-process twin" 201 "$TMP/flat.json" "$STATUS"
    STATUS=$(curl -s -o "$TMP/rpc.json" -w '%{http_code}' -X POST "$BASE/datasets" \
        -H 'Content-Type: application/json' \
        -d '{"name":"rpc","profile":"gazelle","scale":0.01,"seed":7,"shards":2}')
    check "register RPC-sharded twin" 201 "$TMP/rpc.json" "$STATUS"

    MINE='"algorithm":"UApriori","min_esup":0.005'
    STATUS=$(curl -s -o "$TMP/mine_flat.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' -d "{\"dataset\":\"flat\",$MINE}")
    check "/mine in-process twin" 200 "$TMP/mine_flat.json" "$STATUS"
    STATUS=$(curl -s -o "$TMP/mine_rpc.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' -d "{\"dataset\":\"rpc\",$MINE}")
    check "/mine RPC-sharded twin" 200 "$TMP/mine_rpc.json" "$STATUS"
    if ! grep -q '"itemset"' "$TMP/mine_flat.json"; then
        echo "smoke: FAIL — /mine returned an empty result set"
        cat "$TMP/mine_flat.json"
        exit 1
    fi
    if ! cmp -s "$TMP/mine_flat.json" "$TMP/mine_rpc.json"; then
        echo "smoke: FAIL — multi-process sharded /mine differs from in-process"
        diff "$TMP/mine_flat.json" "$TMP/mine_rpc.json" | head -20
        exit 1
    fi
    echo "smoke: multi-process sharded /mine is byte-identical to in-process"

    STATUS=$(curl -s -o "$TMP/stats.json" -w '%{http_code}' "$BASE/stats")
    check "/stats" 200 "$TMP/stats.json" "$STATUS"
    if ! grep -Eq '"remote_shards": *2(,|$)' "$TMP/stats.json"; then
        echo "smoke: FAIL — /stats did not report the 2-shard pool"
        cat "$TMP/stats.json"
        exit 1
    fi
    if ! grep -Eq '"shard_repushes": *[1-9]' "$TMP/stats.json"; then
        echo "smoke: FAIL — /stats counted no shard re-pushes (demand population broken)"
        cat "$TMP/stats.json"
        exit 1
    fi
    if grep -Eq '"shard_failovers": *[1-9]' "$TMP/stats.json"; then
        echo "smoke: FAIL — healthy cluster recorded shard failovers"
        cat "$TMP/stats.json"
        exit 1
    fi
    echo "smoke: /stats shows remote_shards=2, re-pushes counted, no failovers"

    STATUS=$(curl -s -o "$TMP/shard_stats.json" -w '%{http_code}' "http://$SHARD1/stats")
    check "shard /stats" 200 "$TMP/shard_stats.json" "$STATUS"
    if ! grep -Eq '"mines": *[1-9]' "$TMP/shard_stats.json"; then
        echo "smoke: FAIL — shard 1 served no phase-1 mines (work did not distribute)"
        cat "$TMP/shard_stats.json"
        exit 1
    fi
    echo "smoke: shard process served phase-1 mines"

    # Coherent invalidation: growing both twins bumps their versions, which
    # must 409 the shards' pinned slices and re-push before the next mine.
    # The grown datasets must still agree byte for byte.
    for DS in flat rpc; do
        STATUS=$(curl -s -o "$TMP/ingest_$DS.json" -w '%{http_code}' -X POST "$BASE/ingest" \
            -H 'Content-Type: application/json' \
            -d "{\"dataset\":\"$DS\",\"transactions\":[\"0:0.9 1:0.5\",\"2:1.0 5:0.25\"]}")
        check "/ingest $DS" 200 "$TMP/ingest_$DS.json" "$STATUS"
    done
    STATUS=$(curl -s -o "$TMP/mine_flat2.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' -d "{\"dataset\":\"flat\",$MINE}")
    check "post-ingest /mine in-process twin" 200 "$TMP/mine_flat2.json" "$STATUS"
    STATUS=$(curl -s -o "$TMP/mine_rpc2.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' -d "{\"dataset\":\"rpc\",$MINE}")
    check "post-ingest /mine RPC-sharded twin" 200 "$TMP/mine_rpc2.json" "$STATUS"
    if ! cmp -s "$TMP/mine_flat2.json" "$TMP/mine_rpc2.json"; then
        echo "smoke: FAIL — post-ingest sharded /mine differs from in-process"
        diff "$TMP/mine_flat2.json" "$TMP/mine_rpc2.json" | head -20
        exit 1
    fi
    STATUS=$(curl -s -o "$TMP/shard_stats2.json" -w '%{http_code}' "http://$SHARD1/stats")
    check "shard /stats after ingest" 200 "$TMP/shard_stats2.json" "$STATUS"
    if ! grep -Eq '"stale_rejects": *[1-9]' "$TMP/shard_stats2.json"; then
        echo "smoke: FAIL — shard 1 rejected no stale pins (version invalidation broken)"
        cat "$TMP/shard_stats2.json"
        exit 1
    fi
    echo "smoke: version bump invalidated the shards' slices coherently"

    echo "smoke: PASS (shards)"
    exit 0
fi

if [ "$MODE" = "metrics" ]; then
    echo "smoke: building ushard"
    go build -o "$TMP/ushard" ./cmd/ushard

    SHARD1="127.0.0.1:18671"
    SHARD2="127.0.0.1:18672"
    "$TMP/ushard" -addr "$SHARD1" >"$TMP/ushard1.log" 2>&1 &
    SHARD1_PID=$!
    "$TMP/ushard" -addr "$SHARD2" >"$TMP/ushard2.log" 2>&1 &
    SHARD2_PID=$!
    wait_healthz "http://$SHARD1" "$TMP/ushard1.log"
    wait_healthz "http://$SHARD2" "$TMP/ushard2.log"
    "$TMP/userve" -addr "$ADDR" -shards "$SHARD1,$SHARD2" >"$TMP/userve.log" 2>&1 &
    SERVER_PID=$!
    wait_healthz "$BASE" "$TMP/userve.log"
    echo "smoke: coordinator + 2 shard processes up"

    STATUS=$(curl -s -o "$TMP/obs.json" -w '%{http_code}' -X POST "$BASE/datasets" \
        -H 'Content-Type: application/json' \
        -d '{"name":"obs","profile":"gazelle","scale":0.01,"seed":7,"shards":2}')
    check "register RPC-sharded dataset" 201 "$TMP/obs.json" "$STATUS"

    MINE='"dataset":"obs","algorithm":"UApriori","min_esup":0.005'
    STATUS=$(curl -s -D "$TMP/mine_hdrs.txt" -o "$TMP/mine.json" -w '%{http_code}' \
        -X POST "$BASE/mine" -H 'Content-Type: application/json' -d "{$MINE}")
    check "sharded /mine" 200 "$TMP/mine.json" "$STATUS"
    TRACE_ID=$(awk -F': ' 'tolower($1) == "x-umine-trace-id" { gsub(/\r/, "", $2); print $2 }' "$TMP/mine_hdrs.txt")
    if [ -z "$TRACE_ID" ]; then
        echo "smoke: FAIL — /mine response carried no X-Umine-Trace-Id header"
        cat "$TMP/mine_hdrs.txt"
        exit 1
    fi
    echo "smoke: /mine traced as $TRACE_ID"

    # scrape NAME URL FILE: fetch /metrics and require every sample line to
    # parse as Prometheus text exposition (name{labels} value).
    scrape() {
        STATUS=$(curl -s -o "$3" -w '%{http_code}' "$2/metrics")
        check "$1 /metrics" 200 "$3" "$STATUS"
        BAD=$(grep -Ev '^(#|$)' "$3" | grep -Evc '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$' || true)
        if [ "$BAD" != "0" ]; then
            echo "smoke: FAIL — $1 /metrics has $BAD malformed exposition lines"
            grep -Ev '^(#|$)' "$3" | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$' | head -5
            exit 1
        fi
    }
    # metric FILE NAME: print the sample value for an exact series name.
    metric() {
        awk -v n="$2" '$1 == n { print $2 }' "$1"
    }

    scrape "coordinator" "$BASE" "$TMP/m1.txt"
    for FAM in umine_requests_total umine_sharded_mines_total umine_in_flight \
        umine_mine_duration_seconds_count umine_shard_phase1_duration_seconds_count \
        umine_merge_duration_seconds_count umine_phase2_duration_seconds_count; do
        if ! grep -q "^$FAM" "$TMP/m1.txt"; then
            echo "smoke: FAIL — coordinator /metrics missing $FAM"
            exit 1
        fi
    done
    if ! grep -q 'umine_mine_duration_seconds_bucket{le="+Inf"}' "$TMP/m1.txt"; then
        echo "smoke: FAIL — coordinator histogram has no +Inf bucket"
        exit 1
    fi
    echo "smoke: coordinator /metrics parses with all expected families"

    N=1
    for SH in "$SHARD1" "$SHARD2"; do
        scrape "shard $N" "http://$SH" "$TMP/shard$N.txt"
        for FAM in ushard_pushes_total ushard_mines_total ushard_mine1_duration_seconds_count; do
            if ! grep -q "^$FAM" "$TMP/shard$N.txt"; then
                echo "smoke: FAIL — shard $N /metrics missing $FAM"
                exit 1
            fi
        done
        MINES=$(metric "$TMP/shard$N.txt" ushard_mines_total)
        if [ "${MINES:-0}" = "0" ]; then
            echo "smoke: FAIL — shard $N served no phase-1 mines"
            exit 1
        fi
        N=$((N + 1))
    done
    echo "smoke: both shard /metrics parse and counted phase-1 mines"

    # Histogram counts are monotonic across scrapes while load continues.
    C1=$(metric "$TMP/m1.txt" umine_mine_duration_seconds_count)
    STATUS=$(curl -s -o "$TMP/mine2.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' -d "{$MINE,\"no_cache\":true}")
    check "second sharded /mine" 200 "$TMP/mine2.json" "$STATUS"
    scrape "coordinator (rescrape)" "$BASE" "$TMP/m2.txt"
    C2=$(metric "$TMP/m2.txt" umine_mine_duration_seconds_count)
    if ! awk -v a="$C1" -v b="$C2" 'BEGIN { exit !(b > a) }'; then
        echo "smoke: FAIL — mine histogram count not monotonic ($C1 -> $C2)"
        exit 1
    fi
    echo "smoke: histogram counts monotonic across scrapes ($C1 -> $C2)"

    # The first mine's trace is retained and stitches the coordinator's
    # phase spans with the shard spans that rode back over the wire.
    STATUS=$(curl -s -o "$TMP/traces.json" -w '%{http_code}' "$BASE/debug/traces")
    check "/debug/traces" 200 "$TMP/traces.json" "$STATUS"
    STATUS=$(curl -s -o "$TMP/trace.json" -w '%{http_code}' "$BASE/debug/traces/$TRACE_ID")
    check "/debug/traces/{id}" 200 "$TMP/trace.json" "$STATUS"
    for SPAN in '"phase1"' '"shard 0"' '"shard 1"' '"merge"' '"phase2"' '"mine1 obs"'; do
        if ! grep -q "$SPAN" "$TMP/trace.json"; then
            echo "smoke: FAIL — trace $TRACE_ID missing span $SPAN"
            cat "$TMP/trace.json"
            exit 1
        fi
    done
    echo "smoke: sharded mine left one stitched trace (coordinator + shard spans)"

    echo "smoke: PASS (metrics)"
    exit 0
fi

if [ "$MODE" = "explain" ]; then
    echo "smoke: building ushard"
    go build -o "$TMP/ushard" ./cmd/ushard

    SHARD1="127.0.0.1:18671"
    SHARD2="127.0.0.1:18672"
    "$TMP/ushard" -addr "$SHARD1" >"$TMP/ushard1.log" 2>&1 &
    SHARD1_PID=$!
    "$TMP/ushard" -addr "$SHARD2" >"$TMP/ushard2.log" 2>&1 &
    SHARD2_PID=$!
    wait_healthz "http://$SHARD1" "$TMP/ushard1.log"
    wait_healthz "http://$SHARD2" "$TMP/ushard2.log"
    "$TMP/userve" -addr "$ADDR" -shards "$SHARD1,$SHARD2" >"$TMP/userve.log" 2>&1 &
    SERVER_PID=$!
    wait_healthz "$BASE" "$TMP/userve.log"
    echo "smoke: coordinator + 2 shard processes up"

    STATUS=$(curl -s -o "$TMP/exq.json" -w '%{http_code}' -X POST "$BASE/datasets" \
        -H 'Content-Type: application/json' \
        -d '{"name":"exq","profile":"gazelle","scale":0.01,"seed":7,"shards":2}')
    check "register RPC-sharded dataset" 201 "$TMP/exq.json" "$STATUS"

    # A cold POST /explain runs the query exactly as /mine would — over the
    # 2-shard RPC backend — and must report the executed plan: the backend,
    # per-shard partition steps, the shard attempt timeline, and the bytes
    # the scatter pushed over the wire.
    STATUS=$(curl -s -o "$TMP/explain.json" -w '%{http_code}' -X POST "$BASE/explain" \
        -H 'Content-Type: application/json' \
        -d '{"dataset":"exq","algorithm":"UApriori","min_esup":0.005}')
    check "POST /explain (cold, shardrpc)" 200 "$TMP/explain.json" "$STATUS"
    for WANT in '"backend": "shardrpc"' '"path": "mined"' '"shards": 2' \
        '"phase": "partition"' '"kind": "shard"' '"kind": "attempt"'; do
        if ! grep -q "$WANT" "$TMP/explain.json"; then
            echo "smoke: FAIL — cold /explain missing $WANT"
            cat "$TMP/explain.json"
            exit 1
        fi
    done
    if ! grep -Eq '"bytes_pushed": *[1-9]' "$TMP/explain.json"; then
        echo "smoke: FAIL — cold /explain accounted no pushed bytes"
        cat "$TMP/explain.json"
        exit 1
    fi
    if ! grep -Eq '"candidates_generated": *[1-9]' "$TMP/explain.json"; then
        echo "smoke: FAIL — cold /explain counted no candidates"
        cat "$TMP/explain.json"
        exit 1
    fi
    echo "smoke: cold /explain reported the shardrpc plan with its cost breakdown"

    # The explain ran the real mine, so its result is cached: the same query
    # as a GET must explain as a cache hit with no executed plan.
    STATUS=$(curl -s -o "$TMP/explain2.json" -w '%{http_code}' \
        "$BASE/explain?dataset=exq&algo=UApriori&min_esup=0.005")
    check "GET /explain (hot)" 200 "$TMP/explain2.json" "$STATUS"
    for WANT in '"backend": "cache"' '"path": "cache-hit"'; do
        if ! grep -q "$WANT" "$TMP/explain2.json"; then
            echo "smoke: FAIL — hot /explain missing $WANT"
            cat "$TMP/explain2.json"
            exit 1
        fi
    done
    echo "smoke: hot /explain reported the cache-hit path"

    # And the explained query must not have perturbed the serving path: a
    # plain /mine of the same query is a cache hit on the explained result.
    STATUS=$(curl -s -D "$TMP/mine_hdrs.txt" -o "$TMP/mine.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' \
        -d '{"dataset":"exq","algorithm":"UApriori","min_esup":0.005}')
    check "/mine after explain" 200 "$TMP/mine.json" "$STATUS"
    if ! grep -qi '^x-umine-cache: hit' "$TMP/mine_hdrs.txt"; then
        echo "smoke: FAIL — /mine after explain was not a cache hit"
        cat "$TMP/mine_hdrs.txt"
        exit 1
    fi
    if ! grep -q '"itemset"' "$TMP/mine.json"; then
        echo "smoke: FAIL — /mine after explain returned an empty result set"
        exit 1
    fi
    echo "smoke: /mine after explain served the explained result from cache"

    # The workload profile has seen the query group and its hit ratio.
    STATUS=$(curl -s -o "$TMP/workload.json" -w '%{http_code}' "$BASE/debug/workload")
    check "/debug/workload" 200 "$TMP/workload.json" "$STATUS"
    for WANT in '"dataset": "exq"' '"algorithm": "UApriori"' '"threshold_band"' '"cache_hit_ratio"'; do
        if ! grep -q "$WANT" "$TMP/workload.json"; then
            echo "smoke: FAIL — /debug/workload missing $WANT"
            cat "$TMP/workload.json"
            exit 1
        fi
    done
    echo "smoke: /debug/workload profiles the query group"

    # The dashboard renders as HTML, and /metrics carries the SLO burn-rate
    # gauges and build info the dashboard reads.
    STATUS=$(curl -s -o "$TMP/dash.html" -w '%{http_code}' "$BASE/debug/dashboard")
    check "/debug/dashboard" 200 "$TMP/dash.html" "$STATUS"
    for WANT in 'live dashboard' 'SLO burn' 'workload'; do
        if ! grep -q "$WANT" "$TMP/dash.html"; then
            echo "smoke: FAIL — /debug/dashboard missing section $WANT"
            exit 1
        fi
    done
    STATUS=$(curl -s -o "$TMP/metrics.txt" -w '%{http_code}' "$BASE/metrics")
    check "/metrics" 200 "$TMP/metrics.txt" "$STATUS"
    for FAM in umine_slo_burn_rate umine_build_info umine_process_uptime_seconds; do
        if ! grep -q "^$FAM" "$TMP/metrics.txt"; then
            echo "smoke: FAIL — /metrics missing $FAM"
            exit 1
        fi
    done
    echo "smoke: dashboard renders; SLO burn-rate and build-info gauges exposed"

    echo "smoke: PASS (explain)"
    exit 0
fi

if [ "$MODE" = "subscribe" ]; then
    echo "smoke: building usub"
    go build -o "$TMP/usub" ./cmd/usub

    "$TMP/userve" -addr "$ADDR" >"$TMP/userve.log" 2>&1 &
    SERVER_PID=$!
    wait_healthz "$BASE" "$TMP/userve.log"

    STATUS=$(curl -s -o "$TMP/register.json" -w '%{http_code}' -X POST "$BASE/datasets" \
        -H 'Content-Type: application/json' \
        -d '{"name":"live","profile":"gazelle","scale":0.01,"seed":1}')
    check "register profile" 201 "$TMP/register.json" "$STATUS"

    # The real client: print the snapshot diff plus one refresh diff, then
    # exit. Started before the ingest so the refresh is observed live.
    "$TMP/usub" -addr "$ADDR" -dataset live -algo UApriori -min_esup 0.01 -n 2 \
        >"$TMP/events.jsonl" 2>"$TMP/usub.log" &
    USUB_PID=$!

    # Wait until the server has registered the subscriber before ingesting,
    # so the diff cannot race past a not-yet-attached stream.
    i=0
    until curl -s "$BASE/stats" | grep -Eq '"subscribers": *1(,|$)'; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "smoke: FAIL — subscriber never showed up in /stats"
            cat "$TMP/usub.log"
            exit 1
        fi
        sleep 0.2
    done
    echo "smoke: usub subscribed (visible in /stats)"

    STATUS=$(curl -s -o "$TMP/ingest.json" -w '%{http_code}' -X POST "$BASE/ingest" \
        -H 'Content-Type: application/json' \
        -d '{"dataset":"live","transactions":["0:0.9 1:0.5","2:1.0 5:0.25","0:0.4 2:0.8"]}')
    check "/ingest batch" 200 "$TMP/ingest.json" "$STATUS"

    wait "$USUB_PID"
    USUB_PID=""
    EVENTS=$(wc -l <"$TMP/events.jsonl")
    if [ "$EVENTS" != "2" ]; then
        echo "smoke: FAIL — usub printed $EVENTS events (want snapshot + refresh)"
        cat "$TMP/events.jsonl"
        exit 1
    fi
    if ! head -1 "$TMP/events.jsonl" | grep -q '"reason":"snapshot"'; then
        echo "smoke: FAIL — first event is not the snapshot diff"
        head -1 "$TMP/events.jsonl"
        exit 1
    fi
    echo "smoke: usub streamed the snapshot diff and the post-ingest refresh"

    # The refresh diff's result-set size must match a direct /mine of the
    # grown dataset — the continuous query tracks the transactional truth.
    STATUS=$(curl -s -o "$TMP/mine.json" -w '%{http_code}' -X POST "$BASE/mine" \
        -H 'Content-Type: application/json' \
        -d '{"dataset":"live","algorithm":"UApriori","min_esup":0.01}')
    check "/mine grown dataset" 200 "$TMP/mine.json" "$STATUS"
    TOTAL=$(tail -1 "$TMP/events.jsonl" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
    MINED=$(grep -c '"itemset"' "$TMP/mine.json")
    if [ -z "$TOTAL" ] || [ "$TOTAL" != "$MINED" ]; then
        echo "smoke: FAIL — refresh diff total=$TOTAL, direct /mine has $MINED itemsets"
        tail -1 "$TMP/events.jsonl"
        exit 1
    fi
    echo "smoke: refresh diff matches the direct /mine ($TOTAL itemsets)"

    STATUS=$(curl -s -o "$TMP/stats.json" -w '%{http_code}' "$BASE/stats")
    check "/stats" 200 "$TMP/stats.json" "$STATUS"
    if ! grep -Eq '"incremental_updates": *[1-9]' "$TMP/stats.json"; then
        echo "smoke: FAIL — /stats counted no incremental updates"
        cat "$TMP/stats.json"
        exit 1
    fi
    echo "smoke: /stats counted the ledger refreshes"

    echo "smoke: PASS (subscribe)"
    exit 0
fi

"$TMP/userve" -addr "$ADDR" >"$TMP/userve.log" 2>&1 &
SERVER_PID=$!

echo "smoke: waiting for $BASE/healthz"
wait_healthz "$BASE" "$TMP/userve.log"

STATUS=$(curl -s -o "$TMP/register.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"smoke","profile":"gazelle","scale":0.01,"seed":1}')
check "register profile" 201 "$TMP/register.json" "$STATUS"

STATUS=$(curl -s -o "$TMP/mine.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"smoke","algorithm":"UApriori","min_esup":0.005}')
check "/mine" 200 "$TMP/mine.json" "$STATUS"
if ! grep -q '"itemset"' "$TMP/mine.json"; then
    echo "smoke: FAIL — /mine returned an empty result set"
    cat "$TMP/mine.json"
    exit 1
fi
echo "smoke: /mine returned a non-empty result set"

STATUS=$(curl -s -o "$TMP/ingest.json" -w '%{http_code}' -X POST "$BASE/ingest" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"smoke","transactions":["0:0.9 1:0.5","2:1.0"]}')
check "/ingest" 200 "$TMP/ingest.json" "$STATUS"
grep -q '"version": 1' "$TMP/ingest.json" || {
    echo "smoke: FAIL — ingest did not bump the dataset version"
    cat "$TMP/ingest.json"
    exit 1
}

STATUS=$(curl -s -o "$TMP/stats.json" -w '%{http_code}' "$BASE/stats")
check "/stats" 200 "$TMP/stats.json" "$STATUS"

# Scatter-gather sharding: the same generated dataset registered unsharded
# and with 4 sub-shards must serve byte-identical /mine documents (the SON
# two-phase mine is bit-identical to single-shot), and /stats must count the
# partitions mined.
STATUS=$(curl -s -o "$TMP/sg1.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"sg1","profile":"gazelle","scale":0.01,"seed":7}')
check "register unsharded twin" 201 "$TMP/sg1.json" "$STATUS"
STATUS=$(curl -s -o "$TMP/sg4.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"sg4","profile":"gazelle","scale":0.01,"seed":7,"shards":4}')
check "register sharded twin" 201 "$TMP/sg4.json" "$STATUS"
STATUS=$(curl -s -o "$TMP/mine_sg1.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"sg1","algorithm":"UApriori","min_esup":0.005}')
check "/mine unsharded twin" 200 "$TMP/mine_sg1.json" "$STATUS"
STATUS=$(curl -s -o "$TMP/mine_sg4.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"sg4","algorithm":"UApriori","min_esup":0.005}')
check "/mine sharded twin" 200 "$TMP/mine_sg4.json" "$STATUS"
if ! cmp -s "$TMP/mine_sg1.json" "$TMP/mine_sg4.json"; then
    echo "smoke: FAIL — sharded /mine document differs from unsharded"
    diff "$TMP/mine_sg1.json" "$TMP/mine_sg4.json" | head -20
    exit 1
fi
echo "smoke: sharded /mine is byte-identical to unsharded"
STATUS=$(curl -s -o "$TMP/stats_sg.json" -w '%{http_code}' "$BASE/stats")
check "/stats after sharded mine" 200 "$TMP/stats_sg.json" "$STATUS"
if ! grep -Eq '"partitions_mined": *4(,|$)' "$TMP/stats_sg.json"; then
    echo "smoke: FAIL — /stats did not count 4 partitions mined"
    cat "$TMP/stats_sg.json"
    exit 1
fi
echo "smoke: /stats counted the scatter-gather partitions"

# Per-request timeout aborts a running mine. The slow dataset/algorithm pair
# (DCNB at min_sup 0.1 on an accident-like profile) needs ~10s uncancelled;
# a 250ms timeout_ms must therefore abort it in flight, return 503 promptly,
# bump the canceled counter, and leave the server healthy.
STATUS=$(curl -s -o "$TMP/slow.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"slow","profile":"accident","scale":0.01,"seed":1}')
check "register slow profile" 201 "$TMP/slow.json" "$STATUS"

T0=$(date +%s)
STATUS=$(curl -s --max-time 30 -o "$TMP/timeout.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"slow","algorithm":"DCNB","min_sup":0.1,"pft":0.9,"timeout_ms":250,"no_cache":true}')
T1=$(date +%s)
check "/mine with timeout_ms=250" 503 "$TMP/timeout.json" "$STATUS"
if ! grep -q 'context deadline exceeded' "$TMP/timeout.json"; then
    echo "smoke: FAIL — timed-out /mine did not report a deadline error"
    cat "$TMP/timeout.json"
    exit 1
fi
if [ $((T1 - T0)) -gt 5 ]; then
    echo "smoke: FAIL — timed-out /mine took $((T1 - T0))s to return (cancellation not prompt)"
    exit 1
fi
echo "smoke: timed-out /mine aborted in-flight work promptly ($((T1 - T0))s)"

STATUS=$(curl -s -o "$TMP/healthz2.json" -w '%{http_code}' "$BASE/healthz")
check "/healthz after cancellation" 200 "$TMP/healthz2.json" "$STATUS"

STATUS=$(curl -s -o "$TMP/stats2.json" -w '%{http_code}' "$BASE/stats")
check "/stats after cancellation" 200 "$TMP/stats2.json" "$STATUS"
if ! grep -Eq '"canceled": *[1-9]' "$TMP/stats2.json"; then
    echo "smoke: FAIL — /stats canceled count did not increment"
    cat "$TMP/stats2.json"
    exit 1
fi
echo "smoke: /stats counted the canceled job"

echo "smoke: PASS"

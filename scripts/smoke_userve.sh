#!/bin/sh
# Smoke test for the userve mining service: boot the real binary, register a
# generated profile over HTTP, run one /mine query and assert 200 + a
# non-empty result set, exercise /ingest + the version bump, and shut down.
# Mirrored by the "Server smoke" CI job; run locally via `make smoke-server`.
set -eu

ADDR="127.0.0.1:18573"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
SERVER_PID=""
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "smoke: building userve"
go build -o "$TMP/userve" ./cmd/userve

"$TMP/userve" -addr "$ADDR" >"$TMP/userve.log" 2>&1 &
SERVER_PID=$!

echo "smoke: waiting for $BASE/healthz"
i=0
until curl -sf --max-time 2 "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "smoke: FAIL — server did not come up"
        cat "$TMP/userve.log"
        exit 1
    fi
    sleep 0.2
done

check() { # check NAME EXPECTED_STATUS BODY_FILE STATUS
    if [ "$4" != "$2" ]; then
        echo "smoke: FAIL — $1 returned HTTP $4 (want $2)"
        cat "$3"
        exit 1
    fi
    echo "smoke: $1 ok (HTTP $4)"
}

STATUS=$(curl -s -o "$TMP/register.json" -w '%{http_code}' -X POST "$BASE/datasets" \
    -H 'Content-Type: application/json' \
    -d '{"name":"smoke","profile":"gazelle","scale":0.01,"seed":1}')
check "register profile" 201 "$TMP/register.json" "$STATUS"

STATUS=$(curl -s -o "$TMP/mine.json" -w '%{http_code}' -X POST "$BASE/mine" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"smoke","algorithm":"UApriori","min_esup":0.005}')
check "/mine" 200 "$TMP/mine.json" "$STATUS"
if ! grep -q '"itemset"' "$TMP/mine.json"; then
    echo "smoke: FAIL — /mine returned an empty result set"
    cat "$TMP/mine.json"
    exit 1
fi
echo "smoke: /mine returned a non-empty result set"

STATUS=$(curl -s -o "$TMP/ingest.json" -w '%{http_code}' -X POST "$BASE/ingest" \
    -H 'Content-Type: application/json' \
    -d '{"dataset":"smoke","transactions":["0:0.9 1:0.5","2:1.0"]}')
check "/ingest" 200 "$TMP/ingest.json" "$STATUS"
grep -q '"version": 1' "$TMP/ingest.json" || {
    echo "smoke: FAIL — ingest did not bump the dataset version"
    cat "$TMP/ingest.json"
    exit 1
}

STATUS=$(curl -s -o "$TMP/stats.json" -w '%{http_code}' "$BASE/stats")
check "/stats" 200 "$TMP/stats.json" "$STATUS"

echo "smoke: PASS"

// Command benchgate compares fresh benchmark reports against committed
// baselines and fails when a gated latency quantile regresses beyond the
// gate.
//
// Each positional argument is a baseline=fresh pair of JSON report files:
//
//	go run ./scripts/benchgate BENCH_storage.json=BENCH_storage.fresh.json \
//	    BENCH_partition.json=BENCH_partition.fresh.json
//
// The comparator is schema-agnostic: it walks both documents and pairs up
// every numeric field named like a latency quantile — p50_ms, p95_ms or
// p99_ms, bare or as a "_"-suffixed name like cold_p50_ms — by its JSON
// path (array elements by index, so report levels must be written in a
// stable order). A metric regresses when fresh > baseline*(1+max-pct/100)
// + slack-ms; the absolute slack keeps sub-millisecond baselines from
// tripping the gate on runner noise, and it matters doubly for the tail
// quantiles, which are noisier than medians on short runs. Metrics present
// in only one document are reported but do not fail the gate — reports may
// grow fields across commits.
//
// Fields named cache_hit_ratio (bare or suffixed, like the loadbench
// report's hot cache_hit_ratio) are gated with the direction inverted: the
// ratio is a goodness metric, so fresh < baseline - ratio-slack is the
// regression — a cache that stops answering the hot pass fails the gate
// even though every latency column may still squeak under its limit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	maxPct := flag.Float64("max-pct", 25, "maximum allowed quantile regression in percent")
	slackMS := flag.Float64("slack-ms", 25, "absolute slack in ms added to the gate (absorbs runner noise on short runs)")
	ratioSlack := flag.Float64("ratio-slack", 0.05, "absolute slack for inverted ratio metrics (cache_hit_ratio may drop this far below baseline)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-max-pct N] [-slack-ms N] baseline.json=fresh.json ...")
		os.Exit(2)
	}
	failed := false
	for _, pair := range flag.Args() {
		basePath, freshPath, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: argument %q is not a baseline=fresh pair\n", pair)
			os.Exit(2)
		}
		if !comparePair(basePath, freshPath, *maxPct, *slackMS, *ratioSlack) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// comparePair gates one baseline/fresh report pair, printing every metric
// compared. It returns false when any shared metric regresses.
func comparePair(basePath, freshPath string, maxPct, slackMS, ratioSlack float64) bool {
	base, err := loadQuantiles(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return false
	}
	fresh, err := loadQuantiles(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return false
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no gated metrics — nothing to gate\n", basePath)
		return false
	}
	paths := make([]string, 0, len(base))
	for p := range base {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	fmt.Printf("benchgate: %s vs %s (gate: +%.0f%% + %.0fms; ratios: -%.2f)\n", basePath, freshPath, maxPct, slackMS, ratioSlack)
	ok := true
	for _, p := range paths {
		b := base[p]
		f, shared := fresh[p]
		unit := "ms"
		if gatedRatio(p) {
			unit = ""
		}
		if !shared {
			fmt.Printf("  %-40s baseline %.3f%s, absent from fresh report (skipped)\n", p, b, unit)
			continue
		}
		var limit float64
		var regressed bool
		if gatedRatio(p) {
			// Inverted: the ratio dropping below baseline is the regression.
			limit = b - ratioSlack
			regressed = f < limit
		} else {
			limit = b*(1+maxPct/100) + slackMS
			regressed = f > limit
		}
		delta := 0.0
		if b > 0 {
			delta = (f - b) / b * 100
		}
		verdict := "ok"
		if regressed {
			verdict = "REGRESSED"
			ok = false
		}
		fmt.Printf("  %-40s %.3f%s -> %.3f%s (%+.1f%%, limit %.3f%s) %s\n", p, b, unit, f, unit, delta, limit, unit, verdict)
	}
	for p := range fresh {
		if _, shared := base[p]; !shared {
			fmt.Printf("  %-40s new metric %.3f, no baseline (skipped)\n", p, fresh[p])
		}
	}
	return ok
}

// loadQuantiles flattens a JSON report into path -> value for every
// numeric field named like a gated latency quantile.
func loadQuantiles(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	walk("", doc, out)
	return out, nil
}

func walk(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			walk(p, c, out)
		}
	case []any:
		for i, c := range t {
			walk(fmt.Sprintf("%s[%d]", prefix, i), c, out)
		}
	case float64:
		if gatedQuantile(prefix) || gatedRatio(prefix) {
			out[prefix] = t
		}
	}
}

// gatedQuantile reports whether a flattened field path names a latency
// quantile the gate applies to: a field called p50_ms/p95_ms/p99_ms (the
// "." separator is the JSON path) or one suffixed like cold_p50_ms.
func gatedQuantile(path string) bool {
	for _, q := range []string{"p50_ms", "p95_ms", "p99_ms"} {
		if isField(path, q) {
			return true
		}
	}
	return false
}

// gatedRatio reports whether a flattened field path names a goodness ratio
// gated with inverted direction (a drop below baseline is the regression).
func gatedRatio(path string) bool {
	return isField(path, "cache_hit_ratio")
}

// isField reports whether a flattened path names the field: exactly, as a
// "."-separated JSON path tail, or "_"-suffixed like cold_p50_ms.
func isField(path, name string) bool {
	return path == name || strings.HasSuffix(path, "_"+name) || strings.HasSuffix(path, "."+name)
}

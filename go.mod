module umine

go 1.24

// Sensor-network monitoring: the paper's opening motivation (§1). A wireless
// sensor network reports co-occurring environmental events, but sensors are
// noisy, so each reported event carries a confidence derived from the
// sensor's calibration. Mining probabilistic frequent itemsets over these
// readings surfaces event combinations that recur reliably *after*
// accounting for sensor noise — which plain deterministic mining over the
// raw readings would get wrong.
//
// The example simulates a 60-sensor deployment for 2000 observation rounds,
// plants three ground-truth event patterns, mines with NDUH-Mine (the
// paper's new algorithm: UH-Mine framework + Normal approximation, the best
// fit for this sparse workload), and checks the planted patterns are
// recovered while a naive certainty-blind baseline over-reports.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"umine"
)

const (
	numSensors = 60
	numRounds  = 2000
	minSup     = 0.08
	pft        = 0.9
)

// A planted pattern: a set of sensors that fire together in a fraction of
// rounds, with the per-sensor detection confidence the deployment would
// assign (heat+smoke+CO is a fire signature; humidity+pressure a storm
// front; the third is a low-confidence correlated drift).
var planted = []struct {
	name    string
	sensors []umine.Item
	rate    float64 // fraction of rounds where the pattern fires
	conf    float64 // detection confidence when it fires
}{
	{"fire-signature", []umine.Item{3, 17, 42}, 0.20, 0.92},
	{"storm-front", []umine.Item{7, 28}, 0.25, 0.85},
	{"calibration-drift", []umine.Item{11, 33, 50}, 0.15, 0.45},
}

func main() {
	rng := rand.New(rand.NewSource(2012))
	db := simulate(rng)

	st := db.Stats()
	fmt.Printf("sensor readings: %d rounds, %d sensors, avg %.1f events/round, mean confidence %.2f\n\n",
		st.NumTrans, st.NumItems, st.AvgLen, st.MeanProb)

	// Probabilistic frequent itemsets via the paper's NDUH-Mine.
	meas, err := umine.Measure("NDUH-Mine", db, umine.Thresholds{MinSup: minSup, PFT: pft})
	if err != nil {
		log.Fatal(err)
	}
	if meas.Err != nil {
		log.Fatal(meas.Err)
	}
	rs := meas.Results
	fmt.Printf("NDUH-Mine: %d probabilistic frequent itemsets in %v\n", rs.Len(), meas.Elapsed)

	multi := filterMulti(rs)
	fmt.Printf("multi-sensor patterns (|X| ≥ 2): %d\n", len(multi))
	for _, r := range multi {
		fmt.Printf("  sensors %v  esup=%.1f  Pr{sup ≥ %d} ≈ %.3f%s\n",
			r.Itemset, r.ESup, int(float64(db.N())*minSup+0.999), r.FreqProb, plantedTag(r.Itemset))
	}

	// Recovery check: every high-confidence planted pattern must be found;
	// the low-confidence drift must NOT be (its per-event probability 0.45
	// suppresses the pattern's support distribution — the whole point of
	// probability-aware mining).
	fmt.Println("\nground-truth recovery:")
	for _, p := range planted {
		_, found := rs.Lookup(umine.NewItemset(p.sensors...))
		want := p.conf >= 0.8
		status := "ok"
		if found != want {
			status = "UNEXPECTED"
		}
		fmt.Printf("  %-18s conf=%.2f found=%-5v expected=%-5v %s\n", p.name, p.conf, found, want, status)
	}

	// Baseline contrast: treat every reading as certain (probability 1).
	// The drift pattern now looks frequent — the false positive that
	// uncertainty-aware mining avoids.
	certain := certaintyBlind(db)
	crs, err := umine.Mine("UApriori", certain, umine.Thresholds{MinESup: minSup})
	if err != nil {
		log.Fatal(err)
	}
	_, driftCertain := crs.Lookup(umine.NewItemset(planted[2].sensors...))
	fmt.Printf("\ncertainty-blind baseline finds the low-confidence drift pattern: %v (uncertainty-aware: false)\n", driftCertain)
}

// simulate produces one uncertain transaction per observation round:
// background noise events plus any planted patterns that fire.
func simulate(rng *rand.Rand) *umine.Database {
	raw := make([][]umine.Unit, numRounds)
	for t := range raw {
		events := map[umine.Item]float64{}
		// Background: each sensor fires spuriously with 3% chance, with a
		// broad confidence spread.
		for s := 0; s < numSensors; s++ {
			if rng.Float64() < 0.03 {
				events[umine.Item(s)] = 0.3 + 0.6*rng.Float64()
			}
		}
		for _, p := range planted {
			if rng.Float64() < p.rate {
				for _, s := range p.sensors {
					// Confidence jitters a little around the calibration.
					c := p.conf + 0.05*rng.NormFloat64()
					if c > 0.99 {
						c = 0.99
					}
					if c < 0.05 {
						c = 0.05
					}
					events[s] = c
				}
			}
		}
		units := make([]umine.Unit, 0, len(events))
		for s, c := range events {
			units = append(units, umine.Unit{Item: s, Prob: c})
		}
		raw[t] = units
	}
	db, err := umine.NewDatabase("sensornet", raw)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func filterMulti(rs *umine.ResultSet) []umine.Result {
	var out []umine.Result
	for _, r := range rs.Results {
		if len(r.Itemset) >= 2 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ESup > out[j].ESup })
	return out
}

func plantedTag(x umine.Itemset) string {
	for _, p := range planted {
		if x.Equal(umine.NewItemset(p.sensors...)) {
			return "  ← planted: " + p.name
		}
		if umine.NewItemset(p.sensors...).ContainsAll(x) {
			return "  (subset of " + p.name + ")"
		}
	}
	return ""
}

// certaintyBlind copies the database with every probability forced to 1.
func certaintyBlind(db *umine.Database) *umine.Database {
	raw := make([][]umine.Unit, db.N())
	for i, t := range db.Transactions() {
		units := make([]umine.Unit, t.Len())
		for j, it := range t.Items {
			units[j] = umine.Unit{Item: it, Prob: 1}
		}
		raw[i] = units
	}
	out, err := umine.NewDatabase(db.Name+"-certain", raw)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

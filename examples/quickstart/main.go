// Quickstart: build the paper's running example (Table 1) as an uncertain
// database, mine it under both frequentness definitions, and print the
// results — reproducing Examples 1 and 2 of Section 2.
package main

import (
	"context"
	"fmt"
	"log"

	"umine"
)

// Items of Table 1, named for readability.
const (
	A umine.Item = iota
	B
	C
	D
	E
	F
)

var names = map[umine.Item]string{A: "A", B: "B", C: "C", D: "D", E: "E", F: "F"}

func main() {
	// Table 1: four uncertain transactions.
	db := umine.MustNewDatabase("table1", [][]umine.Unit{
		{{Item: A, Prob: 0.8}, {Item: B, Prob: 0.2}, {Item: C, Prob: 0.9}, {Item: D, Prob: 0.7}, {Item: F, Prob: 0.8}},
		{{Item: A, Prob: 0.8}, {Item: B, Prob: 0.7}, {Item: C, Prob: 0.9}, {Item: E, Prob: 0.5}},
		{{Item: A, Prob: 0.5}, {Item: C, Prob: 0.8}, {Item: E, Prob: 0.8}, {Item: F, Prob: 0.3}},
		{{Item: B, Prob: 0.5}, {Item: D, Prob: 0.5}, {Item: F, Prob: 0.7}},
	})

	// Example 1: expected-support semantics at min_esup = 0.5. The paper
	// finds exactly {A} (esup 2.1) and {C} (esup 2.6).
	fmt.Println("— Example 1: expected-support frequent itemsets (min_esup = 0.5) —")
	rs, err := umine.Mine("UApriori", db, umine.Thresholds{MinESup: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rs.Results {
		fmt.Printf("  %-6s esup = %.1f\n", pretty(r.Itemset), r.ESup)
	}

	// Example 2: probabilistic semantics at min_sup = 0.5, pft = 0.7.
	// (The paper's Example 2 uses the standalone hypothetical distribution
	// of its Table 2, where Pr{sup(A) ≥ 2} = 0.72; computed from the actual
	// Table 1 probabilities the exact value is 0.80 — both clear pft = 0.7,
	// so {A} is probabilistic frequent either way.)
	fmt.Println("— Example 2: probabilistic frequent itemsets (min_sup = 0.5, pft = 0.7) —")
	rs, err = umine.Mine("DCB", db, umine.Thresholds{MinSup: 0.5, PFT: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rs.Results {
		fmt.Printf("  %-6s esup = %.1f  Pr{sup ≥ 2} = %.2f\n", pretty(r.Itemset), r.ESup, r.FreqProb)
	}

	// The same query through every registered algorithm: the paper's
	// uniform-platform point — all miners of one family agree exactly.
	fmt.Println("— All algorithms on the same query —")
	for _, name := range umine.Algorithms() {
		m, err := umine.NewMiner(name)
		if err != nil {
			log.Fatal(err)
		}
		var out *umine.ResultSet
		if m.Semantics() == umine.ExpectedSupport {
			out, err = m.Mine(context.Background(), db, umine.Thresholds{MinESup: 0.5})
		} else {
			out, err = m.Mine(context.Background(), db, umine.Thresholds{MinSup: 0.5, PFT: 0.7})
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s (%-17s): %d itemsets: %s\n",
			name, m.Semantics(), out.Len(), prettySet(out))
	}
}

func pretty(s umine.Itemset) string {
	out := "{"
	for i, it := range s {
		if i > 0 {
			out += ","
		}
		out += names[it]
	}
	return out + "}"
}

func prettySet(rs *umine.ResultSet) string {
	out := ""
	for i, r := range rs.Results {
		if i > 0 {
			out += " "
		}
		out += pretty(r.Itemset)
	}
	return out
}

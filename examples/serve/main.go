// Serving: embed the concurrent mining service in a process — register a
// dataset once, query it repeatedly at different thresholds, and watch the
// monotonicity-aware cache, request coalescing and ingest-driven
// invalidation at work. The cmd/userve binary wraps exactly this API behind
// HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"umine"
)

func main() {
	srv := umine.NewServer(umine.ServerConfig{DefaultWorkers: -1})
	ctx := context.Background()

	// Register a generated benchmark dataset once; every request below
	// shares it read-only.
	info, err := srv.RegisterProfile("gazelle", "gazelle", 0.02, 1, umine.RegisterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s: N=%d items=%d (version %d)\n\n", info.Name, info.NumTrans, info.NumItems, info.Version)

	mine := func(minESup float64) *umine.MineResponse {
		resp, err := srv.Mine(ctx, umine.MineRequest{
			Dataset:    "gazelle",
			Algorithm:  "UApriori",
			Thresholds: umine.Thresholds{MinESup: minESup},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("min_esup=%.3f: %4d itemsets  cache=%-8s  %v\n",
			minESup, resp.Results.Len(), resp.Cache, resp.Elapsed)
		return resp
	}

	// Cold mine, exact repeat (cache hit), then a *higher* threshold —
	// answered by filtering the cached lower-threshold result set, no
	// re-mining (both definitions are anti-monotone in their threshold).
	fmt.Println("— cache: miss, hit, monotonic filter —")
	mine(0.005)
	mine(0.005)
	mine(0.010)
	mine(0.020)

	// Identical concurrent queries mine at most once: whichever arrives
	// first mines, later arrivals either coalesce onto that in-flight job
	// or (if it already finished) hit the cache.
	fmt.Println("\n— coalescing: 8 identical concurrent queries —")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Mine(ctx, umine.MineRequest{
				Dataset:    "gazelle",
				Algorithm:  "UH-Mine",
				Thresholds: umine.Thresholds{MinESup: 0.004},
			}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	// Ingest bumps the dataset version and invalidates its cached results.
	fmt.Println("\n— ingest: version bump invalidates the cache —")
	res, err := srv.Ingest(ctx, "gazelle", [][]umine.Unit{
		{{Item: 0, Prob: 0.9}, {Item: 1, Prob: 0.8}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested 1 transaction: version %d, N=%d\n", res.Version, res.N)
	mine(0.005)

	st := srv.Stats()
	fmt.Printf("\nstats: %d requests — %d mined, %d cache hits, %d filtered, %d coalesced\n",
		st.Requests, st.CacheMisses, st.CacheHits, st.CacheFiltered, st.Coalesced)
}

// Protein–protein interaction (PPI) network analysis, the paper's §1
// motivating application from computational biology: high-throughput assays
// report protein interactions with confidence scores (an experimentally
// assigned probability that the interaction is real). Each purification
// experiment is an uncertain transaction whose items are the detected
// interactions; frequently co-occurring interaction sets suggest protein
// complexes.
//
// The example simulates a small interactome with three planted complexes at
// different assay reliabilities, mines probabilistic frequent itemsets
// exactly (DCB) and approximately (NDUApriori), and shows (a) the complexes
// recovered, and (b) the approximation matching the exact answer — the
// paper's Table 8/9 claim on a realistic workload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"umine"
)

const (
	numInteractions = 120 // item universe: candidate interaction pairs
	numExperiments  = 800 // purification runs
	minSup          = 0.15
	pft             = 0.9
)

// Planted complexes: sets of interactions that co-occur when the complex is
// pulled down, with the assay's confidence level.
var complexes = []struct {
	name         string
	interactions []umine.Item
	pullRate     float64
	confidence   float64
}{
	{"proteasome-lid", []umine.Item{5, 12, 31}, 0.35, 0.90},
	{"polymerase-core", []umine.Item{44, 45}, 0.30, 0.80},
	{"transient-assembly", []umine.Item{70, 71, 72}, 0.25, 0.35},
}

func main() {
	rng := rand.New(rand.NewSource(360)) // BMC Bioinformatics 7:360, the paper's PPI citation
	db := simulate(rng)

	st := db.Stats()
	fmt.Printf("interactome: %d experiments, %d candidate interactions, avg %.1f detections/run\n\n",
		st.NumTrans, st.NumItems, st.AvgLen)

	exact, err := umine.Measure("DCB", db, umine.Thresholds{MinSup: minSup, PFT: pft})
	if err != nil {
		log.Fatal(err)
	}
	if exact.Err != nil {
		log.Fatal(exact.Err)
	}
	approx, err := umine.Measure("NDUApriori", db, umine.Thresholds{MinSup: minSup, PFT: pft})
	if err != nil {
		log.Fatal(err)
	}
	if approx.Err != nil {
		log.Fatal(approx.Err)
	}

	fmt.Printf("exact  (DCB):        %3d itemsets in %8v\n", exact.Results.Len(), exact.Elapsed)
	fmt.Printf("approx (NDUApriori): %3d itemsets in %8v\n", approx.Results.Len(), approx.Elapsed)
	acc := umine.CompareSets(approx.Results, exact.Results)
	fmt.Printf("approximation quality: precision %.3f, recall %.3f (speedup ×%.1f)\n\n",
		acc.Precision, acc.Recall, exact.Elapsed.Seconds()/approx.Elapsed.Seconds())

	fmt.Println("recovered interaction sets (|X| ≥ 2), exact frequent probability:")
	for _, r := range exact.Results.Results {
		if len(r.Itemset) < 2 {
			continue
		}
		fmt.Printf("  %v  Pr{sup ≥ %d} = %.3f%s\n",
			r.Itemset, int(float64(db.N())*minSup+0.999), r.FreqProb, tag(r.Itemset))
	}

	fmt.Println("\nplanted-complex recovery (low-confidence assemblies must be rejected):")
	for _, c := range complexes {
		_, found := exact.Results.Lookup(umine.NewItemset(c.interactions...))
		want := c.confidence >= 0.7
		status := "ok"
		if found != want {
			status = "UNEXPECTED"
		}
		fmt.Printf("  %-19s conf=%.2f found=%-5v expected=%-5v %s\n",
			c.name, c.confidence, found, want, status)
	}
}

func simulate(rng *rand.Rand) *umine.Database {
	raw := make([][]umine.Unit, numExperiments)
	for e := range raw {
		detected := map[umine.Item]float64{}
		// Sticky-protein background: spurious detections with low-to-mid
		// confidence.
		for i := 0; i < numInteractions; i++ {
			if rng.Float64() < 0.02 {
				detected[umine.Item(i)] = 0.15 + 0.5*rng.Float64()
			}
		}
		for _, c := range complexes {
			if rng.Float64() < c.pullRate {
				for _, it := range c.interactions {
					conf := c.confidence + 0.05*rng.NormFloat64()
					if conf > 0.99 {
						conf = 0.99
					}
					if conf < 0.05 {
						conf = 0.05
					}
					detected[it] = conf
				}
			}
		}
		units := make([]umine.Unit, 0, len(detected))
		for it, conf := range detected {
			units = append(units, umine.Unit{Item: it, Prob: conf})
		}
		raw[e] = units
	}
	db, err := umine.NewDatabase("interactome", raw)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func tag(x umine.Itemset) string {
	for _, c := range complexes {
		if x.Equal(umine.NewItemset(c.interactions...)) {
			return "  ← planted: " + c.name
		}
	}
	return ""
}

// Streaming monitoring: the online counterpart of the batch miners. A
// sensor deployment pushes uncertain readings continuously; a sliding
// window maintains the expected supports of the patterns of interest
// incrementally (no rescans) and periodically re-mines the window to
// discover patterns that emerged after deployment. A mid-stream regime
// change shows both mechanisms: the old pattern's windowed frequent
// probability collapses, and the refresh picks up the new one.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"umine"
)

const (
	windowSize   = 500
	refreshEvery = 250
	numSensors   = 40
)

func main() {
	miner, err := umine.NewMiner("UApriori")
	if err != nil {
		log.Fatal(err)
	}
	w, err := umine.NewWindow(umine.WindowConfig{
		Size:         windowSize,
		Thresholds:   umine.Thresholds{MinESup: 0.1, MinSup: 0.1, PFT: 0.9},
		Semantics:    umine.ExpectedSupport,
		RefreshEvery: refreshEvery,
		Miner:        miner,
	})
	if err != nil {
		log.Fatal(err)
	}

	oldPattern := umine.NewItemset(3, 7)
	newPattern := umine.NewItemset(20, 21, 22)
	w.Watch(oldPattern)

	rng := rand.New(rand.NewSource(99))
	fmt.Println("streaming 3000 readings; regime change at reading 1500")
	fmt.Printf("%8s  %22s  %22s  %s\n", "reading", "esup{3,7}/window", "esup{20,21,22}/window", "watched")
	for i := 0; i < 3000; i++ {
		active := oldPattern
		if i >= 1500 {
			active = newPattern
		}
		if _, err := w.Push(context.Background(), reading(rng, active)); err != nil {
			log.Fatal(err)
		}
		if (i+1)%500 == 0 {
			oldE, oldWatched := w.ESup(oldPattern)
			newE, newWatched := w.ESup(newPattern)
			tag := "old pattern frequent"
			if newWatched {
				tag = "refresh discovered the new pattern (old dropped)"
			}
			fmt.Printf("%8d  %22s  %22s  %s\n", i+1,
				esupOrDash(oldE, oldWatched), esupOrDash(newE, newWatched), tag)
		}
	}

	fmt.Println("\nfrequent itemsets in the final window (min_esup 0.1):")
	for _, r := range w.Frequent() {
		if len(r.Itemset) < 2 {
			continue
		}
		fmt.Printf("  %v  esup %.1f of %d\n", r.Itemset, r.ESup, w.N())
	}
}

// reading simulates one uncertain transaction: background noise plus the
// active pattern firing 30% of the time.
func reading(rng *rand.Rand, active umine.Itemset) []umine.Unit {
	seen := map[umine.Item]float64{}
	for s := 0; s < numSensors; s++ {
		if rng.Float64() < 0.05 {
			seen[umine.Item(s)] = 0.2 + 0.7*rng.Float64()
		}
	}
	if rng.Float64() < 0.3 {
		for _, it := range active {
			seen[it] = 0.85 + 0.1*rng.Float64()
		}
	}
	units := make([]umine.Unit, 0, len(seen))
	for it, p := range seen {
		units = append(units, umine.Unit{Item: it, Prob: p})
	}
	return units
}

func esupOrDash(e float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", e)
}

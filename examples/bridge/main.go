// Bridge between the two frequentness definitions — the paper's central
// analytical claim (§1, §3.3, §4.5): because the support of an itemset is
// Poisson-Binomial, tracking the variance next to the expected support lets
// expected-support machinery answer probabilistic-frequentness queries on
// large databases, at expected-support cost.
//
// The example demonstrates the three ingredients on a growing database:
//
//  1. the frequent probabilities of probabilistic frequent itemsets
//     saturate at 1 as N grows (the paper's §4.5 "to our surprise" finding);
//  2. the Normal-approximation miner converges to the exact miner
//     (precision/recall → 1) as N grows, per the Lyapunov CLT;
//  3. the approximate miner's cost stays at expected-support level while
//     the exact miner's grows superlinearly.
package main

import (
	"fmt"
	"log"

	"umine"
)

func main() {
	th := umine.Thresholds{MinSup: 0.02, PFT: 0.9}
	fmt.Println("Kosarak-like workload, min_sup 0.02, pft 0.9")
	fmt.Println()
	fmt.Printf("%8s  %6s  %6s  %9s  %9s  %10s  %12s\n",
		"N", "P", "R", "exact s", "approx s", "speedup", "Pr≈1 share")

	for _, scale := range []float64{0.0001, 0.0003, 0.001, 0.003} {
		db, err := umine.GenerateProfile("kosarak", scale, 11)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := umine.Measure("DCB", db, th)
		if err != nil {
			log.Fatal(err)
		}
		if exact.Err != nil {
			log.Fatal(exact.Err)
		}
		approx, err := umine.Measure("NDUH-Mine", db, th)
		if err != nil {
			log.Fatal(err)
		}
		if approx.Err != nil {
			log.Fatal(approx.Err)
		}
		acc := umine.CompareSets(approx.Results, exact.Results)

		// §4.5 saturation: fraction of exact probabilistic frequent itemsets
		// whose frequent probability is ≥ 0.999.
		sat := 0
		for _, r := range exact.Results.Results {
			if r.FreqProb >= 0.999 {
				sat++
			}
		}
		share := 1.0
		if n := exact.Results.Len(); n > 0 {
			share = float64(sat) / float64(n)
		}

		fmt.Printf("%8d  %6.3f  %6.3f  %9.4f  %9.4f  %9.1fx  %11.0f%%\n",
			db.N(), acc.Precision, acc.Recall,
			exact.Elapsed.Seconds(), approx.Elapsed.Seconds(),
			exact.Elapsed.Seconds()/approx.Elapsed.Seconds(), 100*share)
	}

	fmt.Println()
	fmt.Println("Reading: as N grows, precision/recall approach 1 (CLT), most frequent")
	fmt.Println("probabilities sit at 1 (§4.5), and the approximate miner answers the")
	fmt.Println("probabilistic query at expected-support cost — the definitions unify.")
}

// Market-basket analysis over uncertain purchase intent — the classical
// association-rule workload (the paper's reference [7]) lifted to uncertain
// data. A recommender models each browsing session as an uncertain
// transaction: every viewed product carries a purchase probability from the
// click-through model. Mining expected-support frequent itemsets and then
// deriving expected-confidence association rules surfaces "customers who
// buy X tend to buy Y" signals that respect the intent model instead of
// treating every view as a purchase.
//
// The example generates a Gazelle-like (clickstream) workload, mines it,
// condenses the result with the closed/maximal filters, and derives rules.
package main

import (
	"fmt"
	"log"

	"umine"
)

func main() {
	// Gazelle is the paper's clickstream benchmark (Table 6); 2% of its
	// published size keeps this example instant.
	db, err := umine.GenerateProfile("gazelle", 0.02, 2012)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("sessions: %d, products: %d, avg %.1f views/session, mean intent %.2f\n\n",
		st.NumTrans, st.NumItems, st.AvgLen, st.MeanProb)

	rs, err := umine.Mine("UH-Mine", db, umine.Thresholds{MinESup: 0.005})
	if err != nil {
		log.Fatal(err)
	}
	closed := umine.FilterClosed(rs)
	maximal := umine.FilterMaximal(rs)
	fmt.Printf("frequent itemsets: %d (closed %d, maximal %d) — the condensed\n",
		rs.Len(), closed.Len(), maximal.Len())
	fmt.Println("representations carry the same information in a fraction of the size.")

	fmt.Println("\ntop products and bundles by expected purchases:")
	for _, r := range umine.TopK(rs, 8) {
		fmt.Printf("  %-12v expected purchases %.1f\n", r.Itemset, r.ESup)
	}

	rules, err := umine.GenerateRules(rs, umine.RuleConfig{MinConfidence: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassociation rules at expected confidence ≥ 0.3: %d\n", len(rules))
	shown := 0
	for _, r := range rules {
		// Lift > 1 means the pairing is above the consequent's base rate —
		// the actionable recommendations.
		if r.Lift <= 1 {
			continue
		}
		fmt.Printf("  %v\n", r)
		if shown++; shown >= 8 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (no above-base-rate rules at this threshold)")
	}
}

package umine

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestFullPipelineIntegration exercises the library end to end the way the
// README advertises: generate a benchmark profile, persist it in the text
// format, read it back, mine it under both semantics, derive rules, condense
// the result, export to JSON and reread — with cross-checks at every stage.
func TestFullPipelineIntegration(t *testing.T) {
	dir := t.TempDir()

	// Generate and persist.
	db, err := GenerateProfile("gazelle", 0.01, 2012)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gazelle.udb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteUncertain(f, db); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Read back; the round trip must preserve mining behaviour.
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	loaded, err := ReadUncertain(f2, "gazelle.udb")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != db.N() {
		t.Fatalf("round trip changed N: %d → %d", db.N(), loaded.N())
	}

	// Expected-support mining on original and reloaded data must agree.
	th := Thresholds{MinESup: 0.01}
	rs1, err := Mine("UH-Mine", db, th)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := Mine("UH-Mine", loaded, th)
	if err != nil {
		t.Fatal(err)
	}
	if rs1.Len() != rs2.Len() {
		t.Fatalf("mining diverged after IO round trip: %d vs %d itemsets", rs1.Len(), rs2.Len())
	}
	for i := range rs1.Results {
		if !rs1.Results[i].Itemset.Equal(rs2.Results[i].Itemset) ||
			math.Abs(rs1.Results[i].ESup-rs2.Results[i].ESup) > 1e-6 {
			t.Fatalf("result %d diverged after round trip", i)
		}
	}

	// Probabilistic mining: exact vs the bridge approximation.
	pth := Thresholds{MinSup: 0.02, PFT: 0.9}
	exact, err := Mine("DCB", loaded, pth)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Mine("NDUH-Mine", loaded, pth)
	if err != nil {
		t.Fatal(err)
	}
	acc := CompareSets(approx, exact)
	if acc.Precision < 0.95 || acc.Recall < 0.95 {
		t.Fatalf("bridge accuracy too low in the pipeline: P=%.3f R=%.3f", acc.Precision, acc.Recall)
	}

	// Downstream: rules from the expected-support result.
	rules, err := GenerateRules(rs1, RuleConfig{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence < 0.5-1e-9 {
			t.Fatalf("rule below threshold: %v", r)
		}
	}

	// Condensed representations nest.
	closed := FilterClosed(rs1)
	maximal := FilterMaximal(rs1)
	if maximal.Len() > closed.Len() || closed.Len() > rs1.Len() {
		t.Fatalf("condensation sizes wrong: %d / %d / %d", rs1.Len(), closed.Len(), maximal.Len())
	}

	// Top-k agrees with the full mining result on the head.
	top, err := MineTopK(loaded, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := TopK(rs1, 5)
	for i := range top {
		// MineTopK is threshold-free, so it can surface itemsets the
		// thresholded run filtered out; but where both answer, esups match.
		if top[i].Itemset.Equal(full[i].Itemset) &&
			math.Abs(top[i].ESup-full[i].ESup) > 1e-6 {
			t.Fatalf("top-k esup mismatch at %d", i)
		}
	}

	// Export and reread.
	var buf bytes.Buffer
	if err := WriteResultsJSON(&buf, exact); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != exact.Len() || back.Algorithm != exact.Algorithm {
		t.Fatalf("JSON round trip lost results: %d vs %d", back.Len(), exact.Len())
	}
}

// TestAllMinersOnDegenerateDatabases pins the contract on edge inputs:
// empty databases and all-empty transactions yield empty result sets, never
// panics or spurious itemsets.
func TestAllMinersOnDegenerateDatabases(t *testing.T) {
	empty := MustNewDatabase("empty", nil)
	blank := MustNewDatabase("blank", [][]Unit{{}, {}, {}})
	single := MustNewDatabase("single", [][]Unit{{{Item: 0, Prob: 0.4}}})

	for _, name := range Algorithms() {
		m, err := NewMiner(name)
		if err != nil {
			t.Fatal(err)
		}
		th := Thresholds{MinESup: 0.5}
		if m.Semantics() == Probabilistic {
			th = Thresholds{MinSup: 0.5, PFT: 0.7}
		}
		for _, db := range []*Database{empty, blank} {
			rs, err := m.Mine(context.Background(), db, th)
			if err != nil {
				t.Errorf("%s on %s: %v", name, db.Name, err)
				continue
			}
			if rs.Len() != 0 {
				t.Errorf("%s on %s: %d itemsets from nothing", name, db.Name, rs.Len())
			}
		}
		// One transaction, one item at 0.4: frequent at min 0.5 only if the
		// miner mishandles thresholds (esup 0.4 < 0.5, Pr{sup≥1} = 0.4 < 0.7).
		rs, err := m.Mine(context.Background(), single, th)
		if err != nil {
			t.Errorf("%s on single: %v", name, err)
			continue
		}
		if rs.Len() != 0 {
			t.Errorf("%s on single: unexpected results %v", name, rs.Results)
		}
	}
}

package umine_test

import (
	"context"
	"fmt"
	"os"

	"umine"
)

// The paper's Table 1 database, reused by the examples below.
func paperDB() *umine.Database {
	return umine.MustNewDatabase("table1", [][]umine.Unit{
		{{Item: 0, Prob: 0.8}, {Item: 1, Prob: 0.2}, {Item: 2, Prob: 0.9}, {Item: 3, Prob: 0.7}, {Item: 5, Prob: 0.8}},
		{{Item: 0, Prob: 0.8}, {Item: 1, Prob: 0.7}, {Item: 2, Prob: 0.9}, {Item: 4, Prob: 0.5}},
		{{Item: 0, Prob: 0.5}, {Item: 2, Prob: 0.8}, {Item: 4, Prob: 0.8}, {Item: 5, Prob: 0.3}},
		{{Item: 1, Prob: 0.5}, {Item: 3, Prob: 0.5}, {Item: 5, Prob: 0.7}},
	})
}

// Mining expected-support frequent itemsets (the paper's Example 1).
func ExampleMine() {
	rs, err := umine.Mine("UApriori", paperDB(), umine.Thresholds{MinESup: 0.5})
	if err != nil {
		panic(err)
	}
	for _, r := range rs.Results {
		fmt.Printf("%v esup=%.1f\n", r.Itemset, r.ESup)
	}
	// Output:
	// {0} esup=2.1
	// {2} esup=2.6
}

// Mining probabilistic frequent itemsets exactly with DCB.
func ExampleMine_probabilistic() {
	rs, err := umine.Mine("DCB", paperDB(), umine.Thresholds{MinSup: 0.5, PFT: 0.7})
	if err != nil {
		panic(err)
	}
	for _, r := range rs.Results {
		fmt.Printf("%v Pr=%.2f\n", r.Itemset, r.FreqProb)
	}
	// Output:
	// {0} Pr=0.80
	// {2} Pr=0.95
}

// Top-k mining needs no threshold: ask for a budget instead.
func ExampleMineTopK() {
	top, err := umine.MineTopK(paperDB(), 3, 0)
	if err != nil {
		panic(err)
	}
	for _, r := range top {
		fmt.Printf("%v esup=%.2f\n", r.Itemset, r.ESup)
	}
	// Output:
	// {2} esup=2.60
	// {0} esup=2.10
	// {0 2} esup=1.84
}

// Association rules with expected confidence over a mined result set.
func ExampleGenerateRules() {
	rs, err := umine.Mine("UApriori", paperDB(), umine.Thresholds{MinESup: 0.25})
	if err != nil {
		panic(err)
	}
	rules, err := umine.GenerateRules(rs, umine.RuleConfig{MinConfidence: 0.85})
	if err != nil {
		panic(err)
	}
	for _, r := range rules {
		fmt.Printf("%v => %v conf=%.3f\n", r.Antecedent, r.Consequent, r.Confidence)
	}
	// Output:
	// {0} => {2} conf=0.876
}

// Exporting a result set as CSV.
func ExampleWriteResultsCSV() {
	rs, err := umine.Mine("UApriori", paperDB(), umine.Thresholds{MinESup: 0.5})
	if err != nil {
		panic(err)
	}
	if err := umine.WriteResultsCSV(os.Stdout, rs); err != nil {
		panic(err)
	}
	// Output:
	// itemset,length,esup,var,freq_prob
	// 0,1,2.1,0.57,
	// 2,1,2.6,0.33999999999999997,
}

// Streaming: incrementally tracked expected support over a sliding window.
func ExampleNewWindow() {
	w, err := umine.NewWindow(umine.WindowConfig{
		Size:       3,
		Thresholds: umine.Thresholds{MinESup: 0.5},
		Semantics:  umine.ExpectedSupport,
	})
	if err != nil {
		panic(err)
	}
	w.Watch(umine.NewItemset(0))
	for _, tx := range paperDB().Transactions() {
		if _, err := w.PushCanonical(context.Background(), tx); err != nil {
			panic(err)
		}
	}
	esup, _ := w.ESup(umine.NewItemset(0))
	fmt.Printf("windowed esup=%.1f over N=%d\n", esup, w.N())
	// Output:
	// windowed esup=1.3 over N=3
}

// Package umine is a Go reproduction of "Mining Frequent Itemsets over
// Uncertain Databases" (Tong, Chen, Cheng, Yu; PVLDB 5(11), 2012): a uniform
// implementation platform for the eight representative frequent-itemset
// mining algorithms over uncertain transaction databases, plus the datasets,
// measurement layer and benchmark harness of the paper's experimental study.
//
// # Model
//
// An uncertain transaction database UDB is a list of transactions; each
// transaction is a set of (item, probability) units, the probability being
// the chance the item truly appears in that transaction (the attribute-level
// existential-uncertainty model of §2). The support of an itemset X is then
// a random variable following the Poisson-Binomial distribution with one
// trial per transaction, success probability Pr(X ⊆ T_j) = Π_{x∈X} p_j(x).
//
// The paper's two frequentness definitions are both supported:
//
//   - expected support (Definitions 1–2): X is frequent iff
//     esup(X) = Σ_j Pr(X ⊆ T_j) ≥ N·min_esup;
//   - frequent probability (Definitions 3–4): X is frequent iff
//     Pr{sup(X) ≥ N·min_sup} > pft.
//
// # Algorithms
//
// Ten miner configurations are registered (the paper's eight algorithms,
// with the Chernoff-pruned and unpruned exact variants counted separately):
//
//	expected support:  UApriori, UFP-growth, UH-Mine
//	exact prob.:       DPNB, DPB, DCNB, DCB
//	approximate prob.: PDUApriori, NDUApriori, NDUH-Mine
//
// Construct one with NewMiner and run it with Mine or Measure:
//
//	m, _ := umine.NewMiner("UApriori")
//	rs, _ := m.Mine(ctx, db, umine.Thresholds{MinESup: 0.5})
//	for _, r := range rs.Results {
//	    fmt.Println(r.Itemset, r.ESup)
//	}
//
// # Contexts: cancellation and deadlines
//
// Every mining entry point takes a context.Context and honors it
// cooperatively: miners check the context at their natural checkpoints —
// level boundaries and counting chunks in the Apriori framework, between
// per-candidate DP/DC verifications in the exact miners (the dominant cost
// of the platform), between prefix subtrees and extensions in the
// hyper-structure miners, between header items in UFP-growth's
// conditional-tree walk — so canceling the context (or letting its deadline
// expire) aborts a *running* mine within one chunk/candidate of work. A
// canceled Mine returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded) and leaks no goroutines: the shared worker pool
// stops dispatching and fully drains before returning. A mine that runs to
// completion is byte-for-byte unaffected by the checkpoints.
//
// The convenience wrappers without a ctx parameter (Mine, MineWith,
// Measure, MeasureWith) run under context.Background() — the pre-context
// behavior. Migrating from the previous API is mechanical: m.Mine(db, th)
// becomes m.Mine(ctx, db, th), and umine.MineWith(...)/MeasureWith(...)
// either stay as they are or become MineContext/MeasureContext to gain
// cancellation.
//
// # Progress observability
//
// Options.Progress installs an observer that streams ProgressEvents
// (level/candidate/prune counters) from the run's checkpoints — the hook
// long-lived servers and CLIs use to report liveness and to snapshot
// partial MiningStats when a run is canceled:
//
//	opts := umine.Options{Progress: func(ev umine.ProgressEvent) {
//	    log.Printf("%s level %d: %d candidates", ev.Algorithm, ev.Level,
//	        ev.Stats.CandidatesGenerated)
//	}}
//	rs, err := umine.MineContext(ctx, "DCB", db, th, opts)
//
// # Parallel execution
//
// The paper's platform is single-threaded; this reproduction adds a uniform
// parallel-execution layer as an extension. Every miner accepts an Options
// value whose Workers field bounds the goroutines used for its parallel
// phases (0 or 1 = serial, n > 1 = at most n workers, negative =
// GOMAXPROCS):
//
//	m, _ := umine.NewMinerWith("DCB", umine.Options{Workers: 8})
//	rs, _ := m.Mine(db, umine.Thresholds{MinSup: 0.3, PFT: 0.9})
//
// or, on the command line, via the -workers flag shared by the umine, uexp
// and uverify tools:
//
//	umine -algo DCB -min_sup 0.3 -pft 0.9 -profile accident -workers 8
//	uexp -run ablation-parallel -workers 4
//
// # Partitioned (SON-style) mining
//
// Options.Partitions decomposes a mine into K partition-local passes plus
// one full-database verification restricted to the unioned candidates —
// the SON decomposition, which is exact for expected support (additive
// across partitions) and extended to the probabilistic miners through
// per-family candidate floors (see umine/internal/partition). The merged
// result is bit-identical to a single-shot mine at every K and worker
// count, so partitioning is purely an execution strategy:
//
//	m, _ := umine.NewMinerWith("UApriori", umine.Options{Partitions: 4, Workers: -1})
//	rs, _ := m.Mine(ctx, db, umine.Thresholds{MinESup: 0.01})
//
// or `umine -partitions 4`, `uexp -partitions 4`, and `userve -shards 4`
// (scatter-gather /mine over per-dataset sub-shards). MCSampling is the one
// configuration without partition support (SupportsPartitions reports the
// capability); partition boundaries depend only on (N, K), never on
// Workers, so decompositions are reproducible across machine sizes.
//
// # Serving
//
// Beyond one-shot batch runs, the platform embeds as a long-running
// concurrent mining service (NewServer; the userve command is its HTTP
// face): datasets register once and are shared read-only across requests, a
// monotonicity-aware cache answers higher-threshold queries by filtering
// cached lower-threshold results, identical concurrent queries coalesce
// into one mining job, and ingest appends transactions with a version bump
// that invalidates stale cache entries. See serve.go and
// umine/internal/server.
//
// Parallelism is deterministic by construction: work decompositions depend
// only on the input (never the worker count) and shard merges happen in
// canonical order, so a run with Workers=N returns a ResultSet identical to
// Workers=1 for every registered miner. What parallelizes per family: the
// Apriori-framework miners shard the counting pass over fixed transaction
// chunks, the exact miners (DPNB/DPB/DCNB/DCB) additionally verify each
// candidate's frequent probability concurrently — the dominant cost of the
// whole platform — and the UH-Mine-structure miners fan the first-level
// prefix subtrees out over the pool.
//
// Subpackages of internal/ hold the implementations; this package is the
// stable public surface used by the examples, the CLI tools and the
// benchmark harness.
package umine

import (
	"context"
	"io"

	"umine/internal/algo"
	"umine/internal/core"
	"umine/internal/dataset"
	"umine/internal/eval"
	"umine/internal/exp"
)

// Core data-model types, re-exported.
type (
	// Item is a dense item identifier in [0, NumItems).
	Item = core.Item
	// Itemset is a canonical (sorted, duplicate-free) set of items.
	Itemset = core.Itemset
	// Unit is one (item, probability) entry of an uncertain transaction.
	Unit = core.Unit
	// Transaction is a canonical uncertain transaction.
	Transaction = core.Transaction
	// Database is an immutable uncertain transaction database.
	Database = core.Database
	// Thresholds carries min_esup / min_sup / pft.
	Thresholds = core.Thresholds
	// Semantics selects between the two frequentness definitions.
	Semantics = core.Semantics
	// Result is one mined itemset with its frequentness measures.
	Result = core.Result
	// ResultSet is a mining outcome in canonical itemset order.
	ResultSet = core.ResultSet
	// MiningStats counts algorithm work (candidates, prunes, scans).
	MiningStats = core.MiningStats
	// Miner is the uniform interface implemented by all algorithms.
	Miner = core.Miner
	// Options carries cross-cutting execution knobs (Workers, Progress);
	// the zero value is the paper's single-threaded platform.
	Options = core.Options
	// ProgressEvent is one observation streamed during a mining run.
	ProgressEvent = core.ProgressEvent
	// ProgressFunc observes ProgressEvents (see Options.Progress).
	ProgressFunc = core.ProgressFunc
	// ProgressPhase labels where in its run a miner emitted an event.
	ProgressPhase = core.ProgressPhase
	// Measurement is a timed, memory-profiled mining run.
	Measurement = eval.Measurement
	// Accuracy is the precision/recall comparison of §4.4.
	Accuracy = eval.Accuracy
)

// Semantics values.
const (
	// ExpectedSupport is Definition 2 (esup(X) ≥ N × min_esup).
	ExpectedSupport = core.ExpectedSupport
	// Probabilistic is Definition 4 (Pr{sup(X) ≥ N·min_sup} > pft).
	Probabilistic = core.Probabilistic
)

// ProgressPhase values (see core.ProgressEvent).
const (
	// PhaseLevel is a breadth-first level boundary.
	PhaseLevel = core.PhaseLevel
	// PhaseSubtree is one depth-first prefix subtree completing.
	PhaseSubtree = core.PhaseSubtree
	// PhasePartition is one partition of a SON partitioned mine completing
	// its phase-1 pass.
	PhasePartition = core.PhasePartition
	// PhaseShardRetry is a remote shard RPC being retried.
	PhaseShardRetry = core.PhaseShardRetry
	// PhaseShardHedge is a hedged duplicate launched against a straggling
	// shard.
	PhaseShardHedge = core.PhaseShardHedge
	// PhaseShardFailover is a shard's phase-1 mine degrading to the
	// coordinator after exhausted retries.
	PhaseShardFailover = core.PhaseShardFailover
	// PhaseShardRepush is the coordinator re-pushing a slice to a shard
	// that rejected a pinned version (coherent invalidation).
	PhaseShardRepush = core.PhaseShardRepush
	// PhaseDone is the final event of a completed run.
	PhaseDone = core.PhaseDone
)

// NewItemset builds a canonical itemset from the given items.
func NewItemset(items ...Item) Itemset { return core.NewItemset(items...) }

// NewDatabase normalizes raw transactions into a Database.
func NewDatabase(name string, raw [][]Unit) (*Database, error) {
	return core.NewDatabase(name, raw)
}

// MustNewDatabase is NewDatabase panicking on error, for literal data.
func MustNewDatabase(name string, raw [][]Unit) *Database {
	return core.MustNewDatabase(name, raw)
}

// NewMiner constructs a fresh miner by algorithm name. Valid names are
// returned by Algorithms.
func NewMiner(name string) (Miner, error) { return algo.New(name) }

// NewMinerWith constructs a fresh miner by algorithm name with the given
// execution options applied. Options a miner does not support are ignored;
// results are identical for every Options value.
func NewMinerWith(name string, opts Options) (Miner, error) { return algo.NewWith(name, opts) }

// SupportsWorkers reports whether the named algorithm has a parallel phase
// controlled by Options.Workers. Miners without one (e.g. UFP-growth)
// always run serially, silently ignoring the knob; callers can use this to
// tell the difference. Unknown names report false. The answer comes from
// the registry's capability metadata — no throwaway miner is constructed.
func SupportsWorkers(algorithm string) bool {
	return algo.SupportsWorkers(algorithm)
}

// SupportsPartitions reports whether the named algorithm supports the SON
// partitioned two-phase mine of Options.Partitions. MCSampling is the one
// registered configuration that does not (its per-run sampling sequences
// preclude bit-identity); it silently ignores the knob and mines
// single-shot. Unknown names report false.
func SupportsPartitions(algorithm string) bool {
	return algo.SupportsPartitions(algorithm)
}

// Algorithms lists all registered algorithm names in the paper's order.
func Algorithms() []string { return algo.Names() }

// Mine is the one-call convenience: construct the named miner and run it
// under context.Background() (never canceled — the paper's batch shape).
func Mine(algorithm string, db *Database, th Thresholds) (*ResultSet, error) {
	return MineContext(context.Background(), algorithm, db, th, Options{})
}

// MineWith is Mine with execution options (e.g. a Workers bound).
func MineWith(algorithm string, db *Database, th Thresholds, opts Options) (*ResultSet, error) {
	return MineContext(context.Background(), algorithm, db, th, opts)
}

// MineContext is the full-control entry point: construct the named miner
// with the given options and run it under ctx. Cancellation (or a deadline)
// aborts the run at the miner's next cooperative checkpoint — within one
// chunk/candidate of work — returning ctx.Err() with no goroutine leaks.
func MineContext(ctx context.Context, algorithm string, db *Database, th Thresholds, opts Options) (*ResultSet, error) {
	m, err := algo.NewWith(algorithm, opts)
	if err != nil {
		return nil, err
	}
	return m.Mine(ctx, db, th)
}

// Measure runs one mining execution under the paper's uniform measurement
// layer (wall-clock time, sampled peak heap, retained heap), under
// context.Background().
func Measure(algorithm string, db *Database, th Thresholds) (Measurement, error) {
	return MeasureContext(context.Background(), algorithm, db, th, Options{})
}

// MeasureWith is Measure with execution options (e.g. a Workers bound).
func MeasureWith(algorithm string, db *Database, th Thresholds, opts Options) (Measurement, error) {
	return MeasureContext(context.Background(), algorithm, db, th, opts)
}

// MeasureContext is Measure under a context: a cancellation aborts the
// mine at its next checkpoint and surfaces as Measurement.Err = ctx.Err().
func MeasureContext(ctx context.Context, algorithm string, db *Database, th Thresholds, opts Options) (Measurement, error) {
	m, err := algo.NewWith(algorithm, opts)
	if err != nil {
		return Measurement{}, err
	}
	return eval.Run(ctx, m, db, th), nil
}

// CompareSets computes precision and recall of an approximate result set
// against an exact one (§4.4).
func CompareSets(approx, exact *ResultSet) Accuracy { return eval.CompareSets(approx, exact) }

// GenerateProfile generates an uncertain database shaped like one of the
// paper's Table 6 benchmarks ("connect", "accident", "kosarak", "gazelle")
// at the given scale of its published size, with the Table 7 default
// Gaussian probabilities. See package umine/internal/dataset for the full
// generator surface (custom assigners, the Quest synthetic generator, IO).
func GenerateProfile(name string, scale float64, seed int64) (*Database, error) {
	p, ok := dataset.Profiles[name]
	if !ok {
		return nil, &UnknownProfileError{Name: name}
	}
	return p.GenerateUncertain(scale, seed), nil
}

// ProfileNames lists the Table 6 benchmark profile names.
func ProfileNames() []string {
	out := make([]string, 0, len(dataset.Profiles))
	for _, n := range []string{"connect", "accident", "kosarak", "gazelle"} {
		if _, ok := dataset.Profiles[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// UnknownProfileError reports a profile name not in ProfileNames.
type UnknownProfileError struct{ Name string }

func (e *UnknownProfileError) Error() string {
	return "umine: unknown benchmark profile " + e.Name
}

// ReadUncertain parses an uncertain transaction database from its text
// format: one transaction per line, space-separated item:prob units.
func ReadUncertain(r io.Reader, name string) (*Database, error) {
	return dataset.ReadUncertain(r, name)
}

// WriteUncertain writes db in the text format accepted by ReadUncertain.
func WriteUncertain(w io.Writer, db *Database) error {
	return dataset.WriteUncertain(w, db)
}

// Experiments lists the ids of every reproducible figure panel and table of
// the paper's Section 4; RunExperiment executes one.
func Experiments() []string { return exp.IDs() }

// RunExperiment runs a paper experiment by id at the default laptop-scale
// configuration and returns its printable report.
func RunExperiment(id string) (string, error) {
	e, ok := exp.Lookup(id)
	if !ok {
		return "", &UnknownExperimentError{ID: id}
	}
	return e.Run(exp.DefaultConfig()).String(), nil
}

// UnknownExperimentError reports an experiment id not in Experiments.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "umine: unknown experiment " + e.ID
}

package umine

// The benchmark harness of the reproduction: one benchmark per figure and
// table of the paper's Section 4, each regenerating the corresponding
// panel(s) through the experiment registry, plus per-algorithm
// micro-benchmarks on fixed dense/sparse workloads.
//
// Figure benchmarks run the full parameter sweep of their panel per
// iteration and print the paper-style report under -v for the first
// iteration. Dataset scale is reduced (see internal/exp base scales);
// EXPERIMENTS.md records a full run and compares shapes against the paper.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one panel with its report:
//
//	go test -bench=BenchmarkFig4Connect -benchtime=1x -v

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"umine/internal/exp"
)

var benchScale = flag.Float64("umine.benchscale", 0.25, "dataset scale multiplier for figure benchmarks")

// benchExperiment runs one registered experiment per iteration and reports
// the figure's headline numbers as custom metrics.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := exp.DefaultConfig()
	cfg.Scale = *benchScale
	var last *exp.Report
	for i := 0; i < b.N; i++ {
		last = e.Run(cfg)
	}
	if testing.Verbose() {
		last.Fprint(os.Stdout)
	}
	reportHeadline(b, last)
}

// reportHeadline turns the report into benchmark metrics: the total
// measured mining seconds for sweep panels (regressions in any algorithm
// show up in diffs), or the mean cell value for accuracy tables.
func reportHeadline(b *testing.B, r *exp.Report) {
	// Sweep reports carry per-algorithm "<name> s" columns; table10 puts
	// the time rows in the row labels; accuracy tables have neither and
	// report their mean cell instead.
	timeColumns, timeRows := false, false
	for _, c := range r.Columns {
		if strings.HasSuffix(c, " s") {
			timeColumns = true
		}
	}
	for _, l := range r.RowLabels {
		if strings.HasSuffix(l, " s") {
			timeRows = true
		}
	}
	total, points := 0.0, 0
	for i := range r.Cells {
		for j := range r.Columns {
			v := r.Cells[i][j]
			if v != v { // NaN
				continue
			}
			switch {
			case timeColumns && !strings.HasSuffix(r.Columns[j], " s"):
			case !timeColumns && timeRows && !strings.HasSuffix(r.RowLabels[i], " s"):
			default:
				total += v
				points++
			}
		}
	}
	name := "mining-s/op"
	if !timeColumns && !timeRows && points > 0 {
		// Accuracy tables: cells are precisions/recalls in [0,1].
		name = "mean-accuracy"
		total /= float64(points)
	}
	b.ReportMetric(total, name)
	b.ReportMetric(float64(points), "points")
}

// --- Figure 4: expected-support-based algorithms (panels a–l) ------------

func BenchmarkFig4Connect(b *testing.B)     { benchExperiment(b, "fig4a") } // panels a, e
func BenchmarkFig4Accident(b *testing.B)    { benchExperiment(b, "fig4b") } // panels b, f
func BenchmarkFig4Kosarak(b *testing.B)     { benchExperiment(b, "fig4c") } // panels c, g
func BenchmarkFig4Gazelle(b *testing.B)     { benchExperiment(b, "fig4d") } // panels d, h
func BenchmarkFig4Scalability(b *testing.B) { benchExperiment(b, "fig4i") } // panels i, j
func BenchmarkFig4Zipf(b *testing.B)        { benchExperiment(b, "fig4k") } // panels k, l

// --- Figure 5: exact probabilistic algorithms (panels a–l) ---------------

func BenchmarkFig5AccidentMinSup(b *testing.B) { benchExperiment(b, "fig5a") } // a, b
func BenchmarkFig5KosarakMinSup(b *testing.B)  { benchExperiment(b, "fig5c") } // c, d
func BenchmarkFig5AccidentPFT(b *testing.B)    { benchExperiment(b, "fig5e") } // e, f
func BenchmarkFig5KosarakPFT(b *testing.B)     { benchExperiment(b, "fig5g") } // g, h
func BenchmarkFig5Scalability(b *testing.B)    { benchExperiment(b, "fig5i") } // i, j
func BenchmarkFig5Zipf(b *testing.B)           { benchExperiment(b, "fig5k") } // k, l

// --- Figure 6: approximate probabilistic algorithms (panels a–l) ---------

func BenchmarkFig6AccidentMinSup(b *testing.B) { benchExperiment(b, "fig6a") } // a, b
func BenchmarkFig6KosarakMinSup(b *testing.B)  { benchExperiment(b, "fig6c") } // c, d
func BenchmarkFig6AccidentPFT(b *testing.B)    { benchExperiment(b, "fig6e") } // e, f
func BenchmarkFig6KosarakPFT(b *testing.B)     { benchExperiment(b, "fig6g") } // g, h
func BenchmarkFig6Scalability(b *testing.B)    { benchExperiment(b, "fig6i") } // i, j
func BenchmarkFig6Zipf(b *testing.B)           { benchExperiment(b, "fig6k") } // k, l

// --- Tables 8–10 ----------------------------------------------------------

func BenchmarkTable8Accuracy(b *testing.B) { benchExperiment(b, "table8") }
func BenchmarkTable9Accuracy(b *testing.B) { benchExperiment(b, "table9") }
func BenchmarkTable10Summary(b *testing.B) { benchExperiment(b, "table10") }

// --- Per-algorithm micro-benchmarks ---------------------------------------
//
// Each miner runs one complete mining pass per iteration on a fixed
// workload. The dense workload is Accident-like at its family's default
// threshold; the sparse one is Kosarak-like. These benches isolate a single
// algorithm so allocation counts (-benchmem) are attributable.

type benchWorkload struct {
	name string
	db   *Database
	th   Thresholds
}

func benchWorkloads(b *testing.B) []benchWorkload {
	dense, err := GenerateProfile("accident", 0.001, 42)
	if err != nil {
		b.Fatal(err)
	}
	sparse, err := GenerateProfile("kosarak", 0.001, 42)
	if err != nil {
		b.Fatal(err)
	}
	return []benchWorkload{
		{"dense", dense, Thresholds{MinESup: 0.2, MinSup: 0.2, PFT: 0.9}},
		{"sparse", sparse, Thresholds{MinESup: 0.005, MinSup: 0.005, PFT: 0.9}},
	}
}

func BenchmarkMiner(b *testing.B) {
	workloads := benchWorkloads(b)
	for _, name := range Algorithms() {
		for _, w := range workloads {
			b.Run(fmt.Sprintf("%s/%s", name, w.name), func(b *testing.B) {
				m, err := NewMiner(name)
				if err != nil {
					b.Fatal(err)
				}
				var results int
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rs, err := m.Mine(context.Background(), w.db, w.th)
					if err != nil {
						b.Fatal(err)
					}
					results = rs.Len()
				}
				b.ReportMetric(float64(results), "itemsets")
			})
		}
	}
}

package umine_test

import (
	"context"
	"errors"
	"testing"

	"umine"
)

// TestMineContextCancel exercises the public context surface: MineContext
// honors cancellation triggered from the Progress hook and returns
// ctx.Err(); MeasureContext surfaces the same error as Measurement.Err.
func TestMineContextCancel(t *testing.T) {
	db := benchDB(t)
	th := umine.Thresholds{MinESup: 0.05}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events int
	opts := umine.Options{Progress: func(ev umine.ProgressEvent) {
		events++
		cancel()
	}}
	rs, err := umine.MineContext(ctx, "UApriori", db, th, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MineContext: got (%v, %v), want context.Canceled", rs, err)
	}
	if events == 0 {
		t.Fatal("Progress hook never fired")
	}

	mctx, mcancel := context.WithCancel(context.Background())
	mcancel()
	meas, err := umine.MeasureContext(mctx, "UH-Mine", db, th, umine.Options{})
	if err != nil {
		t.Fatalf("MeasureContext construction error: %v", err)
	}
	if !errors.Is(meas.Err, context.Canceled) {
		t.Fatalf("MeasureContext Measurement.Err = %v, want context.Canceled", meas.Err)
	}

	// The ctx-free wrappers still complete normally (Background semantics).
	if _, err := umine.Mine("UApriori", db, th); err != nil {
		t.Fatalf("Mine under Background: %v", err)
	}
}

// TestSupportsWorkersMetadata pins the registry-metadata answer on the
// public surface: every algorithm has a parallel phase (UFP-growth, the
// last serial holdout, gained work-stealing conditional-tree builds), and
// unknown names report false.
func TestSupportsWorkersMetadata(t *testing.T) {
	for _, name := range umine.Algorithms() {
		if !umine.SupportsWorkers(name) {
			t.Errorf("SupportsWorkers(%q) = false, want true", name)
		}
	}
	if umine.SupportsWorkers("nope") {
		t.Error("SupportsWorkers on an unknown algorithm must report false")
	}
}

// benchDB builds a small-but-multilevel database so a Progress event fires
// before the run completes.
func benchDB(t *testing.T) *umine.Database {
	t.Helper()
	raw := make([][]umine.Unit, 0, 600)
	for i := 0; i < 600; i++ {
		var tx []umine.Unit
		for j := 0; j < 8; j++ {
			if (i+j)%3 != 0 {
				tx = append(tx, umine.Unit{Item: umine.Item(j), Prob: 0.5 + float64((i+j)%5)/10})
			}
		}
		raw = append(raw, tx)
	}
	db, err := umine.NewDatabase("cancel-bench", raw)
	if err != nil {
		t.Fatal(err)
	}
	return db
}
